//! Address generation: walking a [`Pattern`] element by element or in
//! vector-register-sized chunks.

use crate::pattern::{Behaviour, Dim, IndirectBehaviour, Param, Pattern};
use crate::StreamMemory;

/// End-of-dimension flags attached to each generated element.
///
/// Bit `k` is set when the element is the **last of a run of dimension `k`**;
/// [`EndFlags::STREAM`] is set on the final element of the whole stream.
/// These are the conditions tested by the UVE `b.{dim.}end`-family branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EndFlags(u16);

impl EndFlags {
    /// Bit marking the end of the entire stream.
    pub const STREAM: u16 = 1 << 15;

    /// No boundary.
    pub const NONE: EndFlags = EndFlags(0);

    /// Creates flags from a raw bitmask.
    pub fn from_bits(bits: u16) -> Self {
        EndFlags(bits)
    }

    /// The raw bitmask.
    pub fn bits(self) -> u16 {
        self.0
    }

    /// `true` if the element ends a run of dimension `k`.
    pub fn ends_dim(self, k: usize) -> bool {
        debug_assert!(k < 15);
        self.0 & (1 << k) != 0
    }

    /// `true` if the element is the last of the stream.
    pub fn ends_stream(self) -> bool {
        self.0 & Self::STREAM != 0
    }

    pub(crate) fn set_dim(&mut self, k: usize) {
        self.0 |= 1 << k;
    }

    pub(crate) fn set_stream(&mut self) {
        self.0 |= Self::STREAM;
    }

    /// Number of dimension boundaries crossed (how deep the carry cascaded);
    /// used by the timing model to charge descriptor-switch cycles.
    pub fn carry_depth(self) -> u32 {
        (self.0 & !Self::STREAM).count_ones()
    }

    /// `true` if the element ends a run of any dimension *above* the
    /// innermost, or the whole stream — the boundaries at which a *packed*
    /// indirect chunk must still close (see [`IndirectPacking`]).
    pub fn ends_outer(self) -> bool {
        self.0 & !1 != 0
    }
}

/// How gathered elements of an *indirectly modified* stream are grouped
/// into vector chunks.
///
/// An indirect modifier fires once per iteration of its binding dimension,
/// so the innermost dimension of a gather is typically size-1: under the
/// strict dimension-0 padding rule every chunk would carry a single valid
/// lane, serializing the consuming core to one element per instruction
/// chain. The paper's Streaming Engine evidently packs gathered elements
/// densely, so `Packed` is the default; `Unpacked` keeps the strict rule
/// for A/B comparison.
///
/// Packing only relaxes *dimension-0* boundaries: a packed chunk still
/// closes at the end of any outer dimension (so the `so.b.dimN.end`
/// branches, N ≥ 1, observe the same boundaries) and at the end of the
/// stream. Affine (non-indirect) streams chunk identically in both modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IndirectPacking {
    /// Pack gathered elements to full vector width across
    /// innermost-dimension boundaries (paper-faithful dense gather).
    #[default]
    Packed,
    /// Close every chunk at a dimension-0 boundary, even for indirect
    /// streams (the pre-packing strict padding rule).
    Unpacked,
}

/// One generated stream element: a byte address plus boundary flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Elem {
    /// Byte address of the element.
    pub addr: u64,
    /// Dimension/stream boundary flags for this element.
    pub ends: EndFlags,
}

/// State of one indirect-modifier origin stream inside a walker.
#[derive(Debug, Clone)]
struct OriginState {
    walker: Box<Walker>,
    /// Number of values consumed so far (for save/restore).
    consumed: u64,
}

/// Per-static-modifier application counter.
#[derive(Debug, Clone, Copy, Default)]
struct ModCounter {
    applied: u64,
}

/// Walks the exact address sequence of a [`Pattern`].
///
/// The walker owns working copies of every descriptor so that modifiers can
/// update offsets/sizes/strides as the pattern iterates; the source
/// [`Pattern`] is never mutated. Indirect patterns additionally read origin
/// values through the [`StreamMemory`] passed to [`next_elem`].
///
/// [`next_elem`]: Walker::next_elem
#[derive(Debug, Clone)]
pub struct Walker {
    base: u64,
    width_bytes: u64,
    /// Statically configured dims (the "original values" referenced by
    /// indirect modifiers).
    dims0: Vec<Dim>,
    /// Working copies, updated by modifiers.
    wdims: Vec<Dim>,
    idx: Vec<u64>,
    /// `static_counters[k][i]`: application count of static modifier `i`
    /// bound to dimension `k`.
    static_counters: Vec<Vec<ModCounter>>,
    /// `origins[k][i]`: origin stream of indirect modifier `i` bound to
    /// dimension `k`.
    origins: Vec<Vec<OriginState>>,
    /// Metadata mirrors of the pattern's modifiers (target/behaviour).
    pattern: Pattern,
    started: bool,
    done: bool,
}

impl Walker {
    /// Creates a walker positioned before the first element of `pattern`.
    pub fn new(pattern: &Pattern) -> Self {
        let n = pattern.ndims();
        let mut static_counters = Vec::with_capacity(n);
        let mut origins = Vec::with_capacity(n);
        for k in 0..n {
            static_counters.push(vec![ModCounter::default(); pattern.static_mods(k).len()]);
            origins.push(
                pattern
                    .indirect_mods(k)
                    .iter()
                    .map(|m| OriginState {
                        walker: Box::new(Walker::new(&m.origin)),
                        consumed: 0,
                    })
                    .collect(),
            );
        }
        Self {
            base: pattern.base(),
            width_bytes: pattern.width().bytes() as u64,
            dims0: pattern.dims().to_vec(),
            wdims: pattern.dims().to_vec(),
            idx: vec![0; n],
            static_counters,
            origins,
            pattern: pattern.clone(),
            started: false,
            done: false,
        }
    }

    /// The pattern this walker iterates.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// `true` once the pattern is exhausted.
    pub fn is_done(&self) -> bool {
        self.done
    }

    fn ndims(&self) -> usize {
        self.wdims.len()
    }

    /// Applies the modifiers bound to dimension `k` to dimension `k - 1`
    /// (called once per iteration of dimension `k`).
    fn apply_mods<M: StreamMemory + ?Sized>(&mut self, k: usize, mem: &M) {
        debug_assert!(k >= 1);
        for (i, m) in self.pattern.static_mods(k).iter().enumerate() {
            let c = &mut self.static_counters[k][i];
            if c.applied >= m.count {
                continue;
            }
            c.applied += 1;
            let delta = match m.behaviour {
                Behaviour::Add => m.displacement,
                Behaviour::Sub => -m.displacement,
            };
            apply_delta(&mut self.wdims[k - 1], m.target, delta);
        }
        // Split-borrow dance: take origins[k] out, walk, put back.
        let mut origin_states = std::mem::take(&mut self.origins[k]);
        for (i, m) in self.pattern.indirect_mods(k).iter().enumerate() {
            let st = &mut origin_states[i];
            let value = match st.walker.next_elem(mem) {
                Some(e) => mem.load(e.addr, m.origin.width()),
                None => 0,
            };
            st.consumed += 1;
            let original = read_param(&self.dims0[k - 1], m.target);
            let new = match m.behaviour {
                IndirectBehaviour::SetAdd => original.wrapping_add(value),
                IndirectBehaviour::SetSub => original.wrapping_sub(value),
                IndirectBehaviour::SetValue => value,
            };
            set_param(&mut self.wdims[k - 1], m.target, new);
        }
        self.origins[k] = origin_states;
    }

    /// Begins the iteration of dimension `k` currently selected by
    /// `idx[k]`, setting up all inner dimensions. Returns `false` when the
    /// pattern is exhausted.
    fn descend_from<M: StreamMemory + ?Sized>(&mut self, mut k: usize, mem: &M) -> bool {
        loop {
            while k > 0 {
                self.apply_mods(k, mem);
                self.idx[k - 1] = 0;
                if self.wdims[k - 1].size == 0 {
                    break; // empty inner run: advance dim k (or above)
                }
                k -= 1;
            }
            if k == 0 {
                return true;
            }
            match self.next_iteration(k) {
                Some(kk) => k = kk,
                None => {
                    self.done = true;
                    return false;
                }
            }
        }
    }

    /// Advances to the next iteration at dimension `k` or above; returns the
    /// dimension where a new iteration began, or `None` if exhausted.
    fn next_iteration(&mut self, mut k: usize) -> Option<usize> {
        loop {
            if k == self.ndims() {
                return None;
            }
            self.idx[k] += 1;
            if self.idx[k] < self.wdims[k].size {
                return Some(k);
            }
            k += 1;
        }
    }

    fn current_addr(&self) -> u64 {
        let mut sum: i64 = 0;
        for (k, d) in self.wdims.iter().enumerate() {
            sum = sum.wrapping_add(
                d.offset
                    .wrapping_add((self.idx[k] as i64).wrapping_mul(d.stride)),
            );
        }
        self.base
            .wrapping_add((sum as u64).wrapping_mul(self.width_bytes))
    }

    /// Generates the next element of the pattern, or `None` when exhausted.
    ///
    /// `mem` is only read when the pattern is indirect.
    pub fn next_elem<M: StreamMemory + ?Sized>(&mut self, mem: &M) -> Option<Elem> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            let top = self.ndims() - 1;
            if self.wdims[top].size == 0 {
                self.done = true;
                return None;
            }
            if !self.descend_from(top, mem) {
                return None;
            }
        }
        let addr = self.current_addr();
        let mut ends = EndFlags::default();
        // Advance to the next element, recording which runs completed.
        self.idx[0] += 1;
        if self.idx[0] >= self.wdims[0].size {
            ends.set_dim(0);
            let mut k = 1;
            let landed = loop {
                if k == self.ndims() {
                    break None;
                }
                self.idx[k] += 1;
                if self.idx[k] < self.wdims[k].size {
                    break Some(k);
                }
                ends.set_dim(k);
                k += 1;
            };
            match landed {
                Some(kk) => {
                    if !self.descend_from(kk, mem) {
                        ends.set_stream();
                    }
                }
                None => {
                    self.done = true;
                    ends.set_stream();
                }
            }
        }
        Some(Elem { addr, ends })
    }

    /// Adapts the walker into a standard [`Iterator`] borrowing `mem`.
    pub fn iter<M: StreamMemory>(self, mem: &M) -> WalkerIter<'_, M> {
        WalkerIter { walker: self, mem }
    }

    pub(crate) fn snapshot_parts(&self) -> SnapshotParts {
        (
            self.wdims.clone(),
            self.idx.clone(),
            self.static_counters
                .iter()
                .map(|v| v.iter().map(|c| c.applied).collect())
                .collect(),
            self.origins
                .iter()
                .map(|v| v.iter().map(|o| o.consumed).collect())
                .collect(),
            self.started,
            self.done,
        )
    }

    pub(crate) fn restore_parts<M: StreamMemory + ?Sized>(
        &mut self,
        parts: SnapshotParts,
        mem: &M,
    ) {
        let (wdims, idx, statics, origins, started, done) = parts;
        self.wdims = wdims;
        self.idx = idx;
        for (k, v) in statics.iter().enumerate() {
            for (i, &applied) in v.iter().enumerate() {
                self.static_counters[k][i].applied = applied;
            }
        }
        // Origin streams are replayed to their consumed position: a stream
        // iteration describes a scalar access, so resuming simply re-walks
        // (the paper: "all pre-fetched data in internal buffers is lost and
        // must be re-loaded").
        for (k, v) in origins.iter().enumerate() {
            for (i, &consumed) in v.iter().enumerate() {
                let pat = self.pattern.indirect_mods(k)[i].origin.clone();
                let mut w = Walker::new(&pat);
                for _ in 0..consumed {
                    w.next_elem(mem);
                }
                self.origins[k][i] = OriginState {
                    walker: Box::new(w),
                    consumed,
                };
            }
        }
        self.started = started;
        self.done = done;
    }
}

fn read_param(d: &Dim, p: Param) -> i64 {
    match p {
        Param::Offset => d.offset,
        Param::Size => d.size as i64,
        Param::Stride => d.stride,
    }
}

fn set_param(d: &mut Dim, p: Param, v: i64) {
    match p {
        Param::Offset => d.offset = v,
        Param::Size => d.size = v.max(0) as u64,
        Param::Stride => d.stride = v,
    }
}

fn apply_delta(d: &mut Dim, p: Param, delta: i64) {
    let v = read_param(d, p).wrapping_add(delta);
    set_param(d, p, v);
}

/// Raw pieces of a walker snapshot: working dims, indices, static-modifier
/// counters, origin positions, started and done flags.
pub(crate) type SnapshotParts = (Vec<Dim>, Vec<u64>, Vec<Vec<u64>>, Vec<Vec<u64>>, bool, bool);

/// Iterator adapter returned by [`Walker::iter`].
#[derive(Debug)]
pub struct WalkerIter<'m, M> {
    walker: Walker,
    mem: &'m M,
}

impl<M: StreamMemory> Iterator for WalkerIter<'_, M> {
    type Item = Elem;

    fn next(&mut self) -> Option<Elem> {
        self.walker.next_elem(self.mem)
    }
}

/// A vector-register-sized group of stream elements.
///
/// For affine streams (and indirect streams under
/// [`IndirectPacking::Unpacked`]) chunks never cross an innermost-dimension
/// boundary: when a dimension-0 run ends before the vector fills, the
/// remaining lanes are invalid (the paper's automatic padding, feature F5).
/// Under [`IndirectPacking::Packed`] an indirect stream packs across
/// dimension-0 boundaries and only closes a chunk at an outer-dimension or
/// stream boundary. `valid` is in `1..=vl` either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecChunk {
    /// Byte addresses of the valid elements, in lane order.
    pub addrs: Vec<u64>,
    /// Number of valid lanes (`addrs.len()`).
    pub valid: usize,
    /// Boundary flags of the *last* element of the chunk; this is the
    /// stream-state the UVE conditional branches observe after consuming the
    /// chunk.
    pub ends: EndFlags,
    /// Number of descriptor-dimension switches performed while generating
    /// this chunk (timing: one extra address-generator cycle each).
    pub dim_switches: u32,
}

impl VecChunk {
    /// Distinct cache lines touched by the chunk's elements, preserving first
    /// access order, assuming `line_bytes`-sized lines. Consecutive accesses
    /// to the same line are merged, mirroring the Streaming Engine's request
    /// coalescing.
    pub fn lines(&self, width_bytes: u64, line_bytes: u64) -> Vec<u64> {
        // Chunks are at most a few dozen lanes, but packed gathers can
        // scatter every lane to a distinct line; a seen-set keeps the dedup
        // linear while preserving first-access order.
        let mut seen = std::collections::HashSet::new();
        let mut lines: Vec<u64> = Vec::new();
        for &a in &self.addrs {
            let first = a / line_bytes;
            let last = (a + width_bytes - 1) / line_bytes;
            for l in first..=last {
                if seen.insert(l) {
                    lines.push(l);
                }
            }
        }
        lines
    }
}

/// Groups a [`Walker`]'s elements into [`VecChunk`]s of at most `vl`
/// elements each.
#[derive(Debug, Clone)]
pub struct VectorWalker {
    walker: Walker,
    vl: usize,
    /// `true` when this stream packs across dimension-0 boundaries
    /// (packed mode requested *and* the pattern is indirect).
    pack: bool,
}

impl VectorWalker {
    /// Creates a vector walker producing chunks of at most `vl` elements,
    /// at the default (packed) indirect chunking.
    ///
    /// # Panics
    ///
    /// Panics if `vl == 0`.
    pub fn new(pattern: &Pattern, vl: usize) -> Self {
        Self::with_packing(pattern, vl, IndirectPacking::default())
    }

    /// Creates a vector walker with an explicit [`IndirectPacking`] mode.
    ///
    /// # Panics
    ///
    /// Panics if `vl == 0`.
    pub fn with_packing(pattern: &Pattern, vl: usize, packing: IndirectPacking) -> Self {
        assert!(vl > 0, "vector length must be positive");
        Self {
            walker: Walker::new(pattern),
            vl,
            pack: packing == IndirectPacking::Packed && pattern.is_indirect(),
        }
    }

    /// The maximum lanes per chunk.
    pub fn vl(&self) -> usize {
        self.vl
    }

    /// `true` when chunks of this stream pack across dimension-0
    /// boundaries (packed mode on an indirect pattern).
    pub fn packs(&self) -> bool {
        self.pack
    }

    /// `true` once the pattern is exhausted.
    pub fn is_done(&self) -> bool {
        self.walker.is_done()
    }

    /// Access to the underlying element walker (for save/restore).
    pub fn walker(&self) -> &Walker {
        &self.walker
    }

    /// Mutable access to the underlying element walker (for save/restore).
    pub fn walker_mut(&mut self) -> &mut Walker {
        &mut self.walker
    }

    /// Produces the next chunk, or `None` when the stream is exhausted.
    pub fn next_chunk<M: StreamMemory + ?Sized>(&mut self, mem: &M) -> Option<VecChunk> {
        let mut addrs = Vec::with_capacity(self.vl);
        let mut ends = EndFlags::default();
        let mut dim_switches = 0;
        while addrs.len() < self.vl {
            let e = self.walker.next_elem(mem)?;
            addrs.push(e.addr);
            ends = e.ends;
            dim_switches += e.ends.carry_depth();
            let close = if self.pack {
                e.ends.ends_outer()
            } else {
                e.ends.ends_dim(0) || e.ends.ends_stream()
            };
            if close {
                break;
            }
        }
        let valid = addrs.len();
        Some(VecChunk {
            addrs,
            valid,
            ends,
            dim_switches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Behaviour, ElemWidth, IndirectBehaviour, Param};
    use crate::{NoMemory, SliceMemory};

    fn addrs_of(p: &Pattern) -> Vec<u64> {
        Walker::new(p).iter(&NoMemory).map(|e| e.addr).collect()
    }

    #[test]
    fn linear_pattern_addresses() {
        // Fig. 3.B1: for i in 0..N { A[i] }
        let p = Pattern::linear(0x1000, ElemWidth::Word, 5).unwrap();
        assert_eq!(addrs_of(&p), vec![0x1000, 0x1004, 0x1008, 0x100c, 0x1010]);
    }

    #[test]
    fn rectangular_pattern_addresses() {
        // Fig. 3.B2: row-major Nr×Nc scan.
        let (nr, nc) = (3u64, 4u64);
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, nc, 1)
            .dim(0, nr, nc as i64)
            .build()
            .unwrap();
        let expect: Vec<u64> = (0..nr)
            .flat_map(|i| (0..nc).map(move |j| (i * nc + j) * 4))
            .collect();
        assert_eq!(addrs_of(&p), expect);
    }

    #[test]
    fn rectangular_scattered_addresses() {
        // Fig. 3.B3: every other row, every other element of the first d.
        let (nr, nc, d) = (4u64, 6u64, 4u64);
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, d / 2, 2)
            .dim(0, nr / 2, 2 * nc as i64)
            .build()
            .unwrap();
        let mut expect = Vec::new();
        for i in (0..nr).step_by(2) {
            for j in (0..d).step_by(2) {
                expect.push((i * nc + j) * 4);
            }
        }
        assert_eq!(addrs_of(&p), expect);
    }

    #[test]
    fn lower_triangular_addresses() {
        // Fig. 3.B4: row i has i+1 elements.
        let (nr, nc) = (4u64, 4u64);
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 0, 1)
            .dim(0, nr, nc as i64)
            .static_mod(Param::Size, Behaviour::Add, 1, nr)
            .build()
            .unwrap();
        let mut expect = Vec::new();
        for i in 0..nr {
            for j in 0..=i {
                expect.push((i * nc + j) * 4);
            }
        }
        assert_eq!(addrs_of(&p), expect);
    }

    #[test]
    fn indirect_pattern_addresses() {
        // Fig. 3.B5: B[A[i]] where A = [3, 0, 2, 1].
        let a = SliceMemory::new(vec![3, 0, 2, 1]);
        let origin = Pattern::linear(0, ElemWidth::Word, 4).unwrap();
        let p = Pattern::builder(0x100, ElemWidth::Word)
            .dim(0, 1, 0)
            .indirect_outer(Param::Offset, IndirectBehaviour::SetAdd, origin, 4)
            .build()
            .unwrap();
        let got: Vec<u64> = Walker::new(&p).iter(&a).map(|e| e.addr).collect();
        assert_eq!(got, vec![0x100 + 12, 0x100, 0x100 + 8, 0x100 + 4]);
    }

    #[test]
    fn end_flags_on_2d() {
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 3, 1)
            .dim(0, 2, 3)
            .build()
            .unwrap();
        let elems: Vec<Elem> = Walker::new(&p).iter(&NoMemory).collect();
        assert_eq!(elems.len(), 6);
        assert!(!elems[0].ends.ends_dim(0));
        assert!(elems[2].ends.ends_dim(0));
        assert!(!elems[2].ends.ends_stream());
        assert!(elems[5].ends.ends_dim(0));
        assert!(elems[5].ends.ends_dim(1));
        assert!(elems[5].ends.ends_stream());
    }

    #[test]
    fn empty_runs_are_skipped() {
        // dim0 size starts at 0 and only the 3rd outer iteration makes it
        // non-empty (displacement 0,0,then grows via count... use Add with
        // count 3 but displacement such that first rows stay empty).
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 0, 1)
            .dim(0, 3, 4)
            .static_mod(Param::Size, Behaviour::Add, 1, 3)
            .build()
            .unwrap();
        // sizes: 1, 2, 3 → 6 elements
        assert_eq!(addrs_of(&p).len(), 6);
    }

    #[test]
    fn zero_sized_stream_yields_nothing() {
        let p = Pattern::linear(0, ElemWidth::Word, 0).unwrap();
        assert_eq!(addrs_of(&p).len(), 0);
        let mut w = Walker::new(&p);
        assert!(w.next_elem(&NoMemory).is_none());
        assert!(w.is_done());
    }

    #[test]
    fn static_mod_count_limits_applications() {
        // Modifier applies only for the first 2 of 4 outer iterations.
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 1, 1)
            .dim(0, 4, 10)
            .static_mod(Param::Size, Behaviour::Add, 1, 2)
            .build()
            .unwrap();
        // sizes: 2, 3, 3, 3 → 11 elements
        assert_eq!(addrs_of(&p).len(), 11);
    }

    #[test]
    fn vector_chunks_respect_dim0_boundary() {
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 5, 1)
            .dim(0, 2, 5)
            .build()
            .unwrap();
        let mut vw = VectorWalker::new(&p, 4);
        let c1 = vw.next_chunk(&NoMemory).unwrap();
        assert_eq!(c1.valid, 4);
        assert!(!c1.ends.ends_dim(0));
        let c2 = vw.next_chunk(&NoMemory).unwrap();
        assert_eq!(c2.valid, 1); // row tail padded
        assert!(c2.ends.ends_dim(0));
        let c3 = vw.next_chunk(&NoMemory).unwrap();
        assert_eq!(c3.valid, 4);
        let c4 = vw.next_chunk(&NoMemory).unwrap();
        assert_eq!(c4.valid, 1);
        assert!(c4.ends.ends_stream());
        assert!(vw.next_chunk(&NoMemory).is_none());
    }

    /// A 2-level MAMR-Ind-shaped gather: rows of `n` single-element
    /// indirect accesses (dim0 size 1, indirect on dim1, dim2 rows).
    fn row_gather(n: u64) -> (Pattern, SliceMemory) {
        let indices: Vec<i64> = (0..n * n).map(|i| ((i * 7) % (n * n)) as i64).collect();
        let mem = SliceMemory::new(indices);
        let origin = Pattern::linear(0, ElemWidth::Word, n * n).unwrap();
        let p = Pattern::builder(0x1_0000, ElemWidth::Word)
            .dim(0, 1, 0)
            .dim(0, n, 0)
            .indirect_mod(Param::Offset, IndirectBehaviour::SetAdd, origin)
            .dim(0, n, 0)
            .build()
            .unwrap();
        (p, mem)
    }

    #[test]
    fn packed_gather_fills_vectors_within_rows() {
        let (p, mem) = row_gather(40); // rows of 40 single-lane accesses
        let unpacked: Vec<VecChunk> = {
            let mut vw = VectorWalker::with_packing(&p, 16, IndirectPacking::Unpacked);
            std::iter::from_fn(|| vw.next_chunk(&mem)).collect()
        };
        let packed: Vec<VecChunk> = {
            let mut vw = VectorWalker::with_packing(&p, 16, IndirectPacking::Packed);
            std::iter::from_fn(|| vw.next_chunk(&mem)).collect()
        };
        // Strict rule: one lane per chunk. Packed: rows of 40 → 16+16+8.
        assert_eq!(unpacked.len(), 40 * 40);
        assert!(unpacked.iter().all(|c| c.valid == 1));
        assert_eq!(packed.len(), 3 * 40);
        let valids: Vec<usize> = packed.iter().take(3).map(|c| c.valid).collect();
        assert_eq!(valids, vec![16, 16, 8]);
        // Same element sequence in the same order.
        let flat_u: Vec<u64> = unpacked.iter().flat_map(|c| c.addrs.clone()).collect();
        let flat_p: Vec<u64> = packed.iter().flat_map(|c| c.addrs.clone()).collect();
        assert_eq!(flat_u, flat_p);
        // Dim-switch cycles are conserved across modes (per-element carry
        // accumulation is mode-independent).
        let sw_u: u32 = unpacked.iter().map(|c| c.dim_switches).sum();
        let sw_p: u32 = packed.iter().map(|c| c.dim_switches).sum();
        assert_eq!(sw_u, sw_p);
        // Packed chunks still close at row (dim-1) boundaries, so the
        // `so.b.dim1.end` branch observes them: every third chunk ends a
        // row, no mid-row chunk does.
        for (i, c) in packed.iter().enumerate() {
            assert_eq!(c.ends.ends_dim(1), i % 3 == 2, "chunk {i}");
        }
        assert!(packed.last().unwrap().ends.ends_stream());
    }

    #[test]
    fn packed_single_descriptor_gather_packs_whole_stream() {
        // Fig. 3.B5 form: the virtual outer dimension is the gather length,
        // so intermediate elements only set bit 0 and the whole gather
        // packs to ⌈n/vl⌉ chunks.
        let a = SliceMemory::new((0..10).map(|i| (9 - i) as i64).collect());
        let origin = Pattern::linear(0, ElemWidth::Word, 10).unwrap();
        let p = Pattern::builder(0x100, ElemWidth::Word)
            .dim(0, 1, 0)
            .indirect_outer(Param::Offset, IndirectBehaviour::SetAdd, origin, 10)
            .build()
            .unwrap();
        let mut vw = VectorWalker::new(&p, 4); // packed is the default
        assert!(vw.packs());
        let c1 = vw.next_chunk(&a).unwrap();
        assert_eq!(c1.valid, 4);
        assert!(!c1.ends.ends_stream());
        let c2 = vw.next_chunk(&a).unwrap();
        let c3 = vw.next_chunk(&a).unwrap();
        assert_eq!((c2.valid, c3.valid), (4, 2));
        assert!(c3.ends.ends_stream());
        assert!(vw.next_chunk(&a).is_none());
    }

    #[test]
    fn packing_mode_is_inert_for_affine_patterns() {
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 5, 1)
            .dim(0, 2, 5)
            .build()
            .unwrap();
        let mut a = VectorWalker::with_packing(&p, 4, IndirectPacking::Packed);
        let mut b = VectorWalker::with_packing(&p, 4, IndirectPacking::Unpacked);
        assert!(!a.packs());
        loop {
            let (ca, cb) = (a.next_chunk(&NoMemory), b.next_chunk(&NoMemory));
            assert_eq!(ca, cb);
            if ca.is_none() {
                break;
            }
        }
    }

    #[test]
    fn chunk_lines_merge_consecutive() {
        let p = Pattern::linear(0, ElemWidth::Word, 16).unwrap();
        let mut vw = VectorWalker::new(&p, 16);
        let c = vw.next_chunk(&NoMemory).unwrap();
        // 16 words = 64 bytes = exactly one 64-byte line
        assert_eq!(c.lines(4, 64), vec![0]);
    }

    #[test]
    fn chunk_lines_scattered() {
        let p = Pattern::strided(0, ElemWidth::Word, 4, 32).unwrap(); // 128 B apart
        let mut vw = VectorWalker::new(&p, 4);
        let c = vw.next_chunk(&NoMemory).unwrap();
        assert_eq!(c.lines(4, 64), vec![0, 2, 4, 6]);
    }

    #[test]
    fn negative_stride_walks_backwards() {
        let p = Pattern::builder(0x100, ElemWidth::Word)
            .dim(0, 4, -1)
            .build()
            .unwrap();
        assert_eq!(addrs_of(&p), vec![0x100, 0xfc, 0xf8, 0xf4]);
    }

    #[test]
    fn offset_shifts_pattern() {
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(2, 3, 1)
            .build()
            .unwrap();
        assert_eq!(addrs_of(&p), vec![8, 12, 16]);
    }

    #[test]
    fn count_matches_walk() {
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 0, 1)
            .dim(0, 5, 8)
            .static_mod(Param::Size, Behaviour::Add, 1, 5)
            .build()
            .unwrap();
        assert_eq!(p.count(&NoMemory), 15);
        assert_eq!(p.nominal_len(), 0); // nominal ignores modifiers
    }

    #[test]
    fn indirect_set_value_sets_stride() {
        // stride of dim0 taken from origin values per outer iteration
        let mem = SliceMemory::new(vec![1, 2]);
        let origin = Pattern::linear(0, ElemWidth::Word, 2).unwrap();
        let p = Pattern::builder(0x1000, ElemWidth::Word)
            .dim(0, 3, 1)
            .indirect_outer(Param::Stride, IndirectBehaviour::SetValue, origin, 2)
            .build()
            .unwrap();
        let got: Vec<u64> = Walker::new(&p).iter(&mem).map(|e| e.addr).collect();
        // iter 1: stride 1 → 0x1000,0x1004,0x1008; iter 2: stride 2 →
        // 0x1000,0x1008,0x1010
        assert_eq!(got, vec![0x1000, 0x1004, 0x1008, 0x1000, 0x1008, 0x1010]);
    }

    #[test]
    fn three_dim_pattern() {
        let p = Pattern::builder(0, ElemWidth::Double)
            .dim(0, 2, 1)
            .dim(0, 3, 2)
            .dim(0, 2, 6)
            .build()
            .unwrap();
        let a = addrs_of(&p);
        assert_eq!(a.len(), 12);
        assert_eq!(a[0], 0);
        assert_eq!(a[2], 16); // second mid-dim iteration
        assert_eq!(a[6], 48); // second outer iteration
    }
}
