//! Stream context saving and restoring (paper Sec. IV-A, *Context
//! Switching*).
//!
//! Suspending a stream stores the committed iteration state; resuming
//! restores it and re-walks origin streams (prefetched data in internal
//! buffers is lost and re-loaded, exactly as the paper specifies). The size
//! of the saved state depends on the pattern: 32 bytes for a 1-D pattern up
//! to ≈400 bytes for the maximum 8-D/7-modifier configuration.

use crate::pattern::Dim;
use crate::walker::Walker;
use crate::StreamMemory;

/// Bytes of saved state per descriptor dimension (3 parameters + index, 8 B
/// each).
pub const BYTES_PER_DIM: usize = 32;

/// Bytes of saved state per modifier (working parameter + application
/// counter + metadata).
pub const BYTES_PER_MODIFIER: usize = 20;

/// A serializable snapshot of a [`Walker`]'s committed iteration state.
///
/// Restoring requires the same [`Pattern`](crate::Pattern) the snapshot was
/// taken from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedWalker {
    wdims: Vec<Dim>,
    idx: Vec<u64>,
    static_counters: Vec<Vec<u64>>,
    origin_positions: Vec<Vec<u64>>,
    started: bool,
    done: bool,
}

impl SavedWalker {
    /// Captures the state of `walker`.
    pub fn capture(walker: &Walker) -> Self {
        let (wdims, idx, static_counters, origin_positions, started, done) =
            walker.snapshot_parts();
        Self {
            wdims,
            idx,
            static_counters,
            origin_positions,
            started,
            done,
        }
    }

    /// Restores this snapshot into `walker` (which must have been created
    /// from the same pattern). Origin streams are re-walked to their saved
    /// positions using `mem`.
    pub fn restore<M: StreamMemory + ?Sized>(&self, walker: &mut Walker, mem: &M) {
        walker.restore_parts(
            (
                self.wdims.clone(),
                self.idx.clone(),
                self.static_counters.clone(),
                self.origin_positions.clone(),
                self.started,
                self.done,
            ),
            mem,
        );
    }

    /// The architectural size of this saved state in bytes, matching the
    /// paper's 32 B (1-D) … ≈400 B (8-D + 7 modifiers) range.
    pub fn size_bytes(&self) -> usize {
        let nmods: usize = self.static_counters.iter().map(Vec::len).sum::<usize>()
            + self.origin_positions.iter().map(Vec::len).sum::<usize>();
        self.wdims.len() * BYTES_PER_DIM + nmods * BYTES_PER_MODIFIER
    }
}

/// Aggregate report of stream-state sizes for a set of patterns, used by the
/// hardware-overhead analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateSizeReport {
    /// Smallest saved-state size in bytes.
    pub min_bytes: usize,
    /// Largest saved-state size in bytes.
    pub max_bytes: usize,
}

impl StateSizeReport {
    /// Computes the saved-state size range for the hardware limits: 1-D with
    /// no modifiers up to [`MAX_DIMS`](crate::MAX_DIMS) dimensions with
    /// [`MAX_MODIFIERS`](crate::MAX_MODIFIERS) modifiers.
    pub fn architectural() -> Self {
        Self {
            min_bytes: BYTES_PER_DIM,
            max_bytes: crate::MAX_DIMS * BYTES_PER_DIM + crate::MAX_MODIFIERS * BYTES_PER_MODIFIER,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Behaviour, ElemWidth, NoMemory, Param, Pattern};

    #[test]
    fn save_restore_roundtrip_mid_stream() {
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 3, 1)
            .dim(0, 4, 3)
            .build()
            .unwrap();
        let reference: Vec<u64> = Walker::new(&p).iter(&NoMemory).map(|e| e.addr).collect();

        let mut w = Walker::new(&p);
        for _ in 0..5 {
            w.next_elem(&NoMemory);
        }
        let saved = SavedWalker::capture(&w);

        let mut w2 = Walker::new(&p);
        saved.restore(&mut w2, &NoMemory);
        let rest: Vec<u64> = w2.iter(&NoMemory).map(|e| e.addr).collect();
        assert_eq!(rest, reference[5..].to_vec());
    }

    #[test]
    fn save_restore_with_static_modifier() {
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 0, 1)
            .dim(0, 6, 8)
            .static_mod(Param::Size, Behaviour::Add, 1, 6)
            .build()
            .unwrap();
        let reference: Vec<u64> = Walker::new(&p).iter(&NoMemory).map(|e| e.addr).collect();
        for cut in [0usize, 1, 7, 20] {
            let mut w = Walker::new(&p);
            for _ in 0..cut {
                w.next_elem(&NoMemory);
            }
            let saved = SavedWalker::capture(&w);
            let mut w2 = Walker::new(&p);
            saved.restore(&mut w2, &NoMemory);
            let rest: Vec<u64> = w2.iter(&NoMemory).map(|e| e.addr).collect();
            assert_eq!(
                rest,
                reference[cut.min(reference.len())..].to_vec(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn state_size_bounds_match_paper() {
        let r = StateSizeReport::architectural();
        assert_eq!(r.min_bytes, 32);
        assert!(r.max_bytes >= 360 && r.max_bytes <= 400, "{}", r.max_bytes);
    }

    #[test]
    fn state_size_of_simple_pattern() {
        let p = Pattern::linear(0, ElemWidth::Word, 8).unwrap();
        let w = Walker::new(&p);
        assert_eq!(SavedWalker::capture(&w).size_bytes(), 32);
    }
}
