//! Pattern types: descriptors, modifiers, validation and builders.

use std::fmt;

/// Maximum number of descriptor dimensions supported by the streaming
/// hardware (paper, Sec. III-A2: "the current implementation supports up to 8
/// dimensions and 7 modifiers").
pub const MAX_DIMS: usize = 8;

/// Maximum number of modifiers (static + indirect) per stream.
pub const MAX_MODIFIERS: usize = 7;

/// Width of one stream element, matching the UVE elementary data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ElemWidth {
    /// 8-bit byte.
    Byte,
    /// 16-bit half-word.
    Half,
    /// 32-bit word (the most common width in the evaluation kernels).
    #[default]
    Word,
    /// 64-bit double-word.
    Double,
}

impl ElemWidth {
    /// Size of one element in bytes.
    pub fn bytes(self) -> usize {
        match self {
            ElemWidth::Byte => 1,
            ElemWidth::Half => 2,
            ElemWidth::Word => 4,
            ElemWidth::Double => 8,
        }
    }

    /// The UVE assembly suffix for this width (`b`/`h`/`w`/`d`).
    pub fn suffix(self) -> char {
        match self {
            ElemWidth::Byte => 'b',
            ElemWidth::Half => 'h',
            ElemWidth::Word => 'w',
            ElemWidth::Double => 'd',
        }
    }

    /// Parses a width from its assembly suffix.
    pub fn from_suffix(c: char) -> Option<Self> {
        Some(match c {
            'b' => ElemWidth::Byte,
            'h' => ElemWidth::Half,
            'w' => ElemWidth::Word,
            'd' => ElemWidth::Double,
            _ => return None,
        })
    }

    /// All four widths, narrowest first.
    pub fn all() -> [ElemWidth; 4] {
        [
            ElemWidth::Byte,
            ElemWidth::Half,
            ElemWidth::Word,
            ElemWidth::Double,
        ]
    }
}

impl fmt::Display for ElemWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

/// One descriptor dimension: the `{O, E, S}` tuple of the paper.
///
/// `offset` and `stride` are expressed in *elements* (scaled by the pattern's
/// [`ElemWidth`] during address generation); `size` is the element count of
/// the dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Dim {
    /// Indexing offset `O`, in elements.
    pub offset: i64,
    /// Number of elements `E` in this dimension.
    pub size: u64,
    /// Stride `S` between consecutive elements, in elements.
    pub stride: i64,
}

impl Dim {
    /// Creates a dimension descriptor.
    pub fn new(offset: i64, size: u64, stride: i64) -> Self {
        Self {
            offset,
            size,
            stride,
        }
    }
}

/// Which parameter of the target descriptor a modifier updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Param {
    /// The dimension's indexing offset (for dimension 0 this shifts the
    /// position relative to the stream's base address).
    Offset,
    /// The dimension's element count.
    Size,
    /// The dimension's stride.
    Stride,
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Param::Offset => "offset",
            Param::Size => "size",
            Param::Stride => "stride",
        })
    }
}

/// Behaviour of a static modifier: the displacement is *accumulated* into the
/// target parameter on every application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Behaviour {
    /// Add the displacement to the target parameter.
    Add,
    /// Subtract the displacement from the target parameter.
    Sub,
}

/// Behaviour of an indirect modifier: the target parameter is *set* from the
/// origin-stream value on every application (no accumulation, paper
/// Sec. II-B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndirectBehaviour {
    /// `target = original_static_value + origin_value`.
    SetAdd,
    /// `target = original_static_value - origin_value`.
    SetSub,
    /// `target = origin_value`.
    SetValue,
}

/// A static descriptor modifier: the `{T, B, D, E}` tuple of the paper.
///
/// A modifier *bound to* dimension `k + 1` updates a parameter of dimension
/// `k` each time dimension `k + 1` iterates (i.e. at the start of every run
/// of dimension `k`, including the first). After `count` applications the
/// modifier becomes inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaticMod {
    /// Parameter of the affected (next-inner) dimension to modify.
    pub target: Param,
    /// Whether the displacement is added or subtracted.
    pub behaviour: Behaviour,
    /// Constant displacement `D` applied on each iteration.
    pub displacement: i64,
    /// Total number of iterations the modification is applied (`E`).
    pub count: u64,
}

impl StaticMod {
    /// Creates a static modifier.
    pub fn new(target: Param, behaviour: Behaviour, displacement: i64, count: u64) -> Self {
        Self {
            target,
            behaviour,
            displacement,
            count,
        }
    }
}

/// An indirect descriptor modifier: the `{T, B, P}` tuple of the paper.
///
/// On each iteration of its binding dimension, one value is consumed from the
/// origin stream and used to *set* a parameter of the next-inner dimension.
/// The origin pattern must be affine (indirect chains of depth > 1 are
/// rejected at build time, mirroring the hardware restriction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndirectMod {
    /// Parameter of the affected (next-inner) dimension to modify.
    pub target: Param,
    /// How the origin value combines with the original static parameter.
    pub behaviour: IndirectBehaviour,
    /// The origin stream whose data drives the modification.
    pub origin: Pattern,
}

impl IndirectMod {
    /// Creates an indirect modifier reading displacement values from
    /// `origin`.
    pub fn new(target: Param, behaviour: IndirectBehaviour, origin: Pattern) -> Self {
        Self {
            target,
            behaviour,
            origin,
        }
    }
}

/// Modifiers attached to one dimension (applied to the next-inner dimension).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct DimMods {
    pub(crate) statics: Vec<StaticMod>,
    pub(crate) indirects: Vec<IndirectMod>,
}

impl DimMods {
    pub(crate) fn is_empty(&self) -> bool {
        self.statics.is_empty() && self.indirects.is_empty()
    }

    pub(crate) fn len(&self) -> usize {
        self.statics.len() + self.indirects.len()
    }
}

/// Error raised when building or validating a [`Pattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// The pattern declares no dimensions.
    NoDims,
    /// More than [`MAX_DIMS`] dimensions were declared.
    TooManyDims(usize),
    /// More than [`MAX_MODIFIERS`] modifiers were declared in total.
    TooManyModifiers(usize),
    /// A modifier was attached to dimension 0, which has no inner dimension
    /// to affect. Modifiers bind to dimension `k + 1` and affect `k`.
    ModifierOnInnermost,
    /// A modifier referenced a dimension index that does not exist.
    BadModifierDim(usize),
    /// An indirect modifier's origin pattern itself contains indirect
    /// modifiers (indirection chains are limited to depth 1).
    NestedIndirection,
    /// The base address is not aligned to the element width.
    Misaligned {
        /// The offending base address.
        base: u64,
        /// The required element width.
        width: ElemWidth,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::NoDims => write!(f, "pattern has no dimensions"),
            PatternError::TooManyDims(n) => {
                write!(f, "pattern has {n} dimensions, the maximum is {MAX_DIMS}")
            }
            PatternError::TooManyModifiers(n) => write!(
                f,
                "pattern has {n} modifiers, the maximum is {MAX_MODIFIERS}"
            ),
            PatternError::ModifierOnInnermost => {
                write!(f, "modifiers cannot be attached to dimension 0")
            }
            PatternError::BadModifierDim(k) => {
                write!(f, "modifier attached to nonexistent dimension {k}")
            }
            PatternError::NestedIndirection => {
                write!(
                    f,
                    "indirect origin streams must be affine (depth-1 indirection)"
                )
            }
            PatternError::Misaligned { base, width } => write!(
                f,
                "base address {base:#x} is not aligned to element width {}",
                width.bytes()
            ),
        }
    }
}

impl std::error::Error for PatternError {}

/// A validated n-dimensional stream access pattern.
///
/// Dimension 0 is the innermost (fastest-varying) dimension. Element `X =
/// (x_0, …, x_{n-1})` maps to byte address
///
/// ```text
/// base + width * Σ_k (offset_k + x_k * stride_k) ,  x_k ∈ [0, size_k)
/// ```
///
/// which is the affine model of Eq. (1) in the paper with the element scaling
/// made explicit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    base: u64,
    width: ElemWidth,
    dims: Vec<Dim>,
    /// `mods[k]` holds modifiers bound to dimension `k` (affecting `k - 1`).
    mods: Vec<DimMods>,
}

impl Pattern {
    /// Starts building a pattern with the given byte base address and element
    /// width.
    pub fn builder(base: u64, width: ElemWidth) -> PatternBuilder {
        PatternBuilder::new(base, width)
    }

    /// Convenience constructor for the ubiquitous 1-D linear pattern
    /// (`for i in 0..n { a[i] }`).
    ///
    /// # Errors
    ///
    /// Returns an error if `base` is not aligned to `width`.
    pub fn linear(base: u64, width: ElemWidth, n: u64) -> Result<Self, PatternError> {
        Self::builder(base, width).dim(0, n, 1).build()
    }

    /// Convenience constructor for a strided 1-D pattern.
    ///
    /// # Errors
    ///
    /// Returns an error if `base` is not aligned to `width`.
    pub fn strided(base: u64, width: ElemWidth, n: u64, stride: i64) -> Result<Self, PatternError> {
        Self::builder(base, width).dim(0, n, stride).build()
    }

    /// The byte base address of the pattern.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The element width.
    pub fn width(&self) -> ElemWidth {
        self.width
    }

    /// The dimensions, innermost first.
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Modifiers bound to dimension `k` (affecting dimension `k - 1`).
    pub fn static_mods(&self, k: usize) -> &[StaticMod] {
        &self.mods[k].statics
    }

    /// Indirect modifiers bound to dimension `k`.
    pub fn indirect_mods(&self, k: usize) -> &[IndirectMod] {
        &self.mods[k].indirects
    }

    /// Total number of modifiers across all dimensions.
    pub fn modifier_count(&self) -> usize {
        self.mods.iter().map(DimMods::len).sum()
    }

    /// `true` if the pattern contains any indirect modifier (its addresses
    /// depend on memory contents).
    pub fn is_indirect(&self) -> bool {
        self.mods.iter().any(|m| !m.indirects.is_empty())
    }

    /// `true` if the pattern contains any modifier at all.
    pub fn has_modifiers(&self) -> bool {
        self.mods.iter().any(|m| !m.is_empty())
    }

    /// Upper bound on the number of elements, assuming no modifier shrinks a
    /// dimension below its configured size. For affine patterns without
    /// size-targeting modifiers this is exact.
    pub fn nominal_len(&self) -> u64 {
        self.dims.iter().map(|d| d.size).product()
    }

    /// Exact element count, walking the pattern (resolving modifiers and
    /// indirection against `mem`).
    pub fn count<M: crate::StreamMemory>(&self, mem: &M) -> u64 {
        let mut walker = crate::Walker::new(self);
        let mut n = 0;
        while walker.next_elem(mem).is_some() {
            n += 1;
        }
        n
    }
}

impl fmt::Display for Pattern {
    /// Renders the pattern in the paper's Fig. 3 notation: one
    /// `{offset, size, stride}` tuple per dimension (innermost first) plus
    /// attached modifiers.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "base {:#x} ({})", self.base, self.width)?;
        for (k, d) in self.dims.iter().enumerate() {
            write!(f, " D{k}:{{{}, {}, {}}}", d.offset, d.size, d.stride)?;
            for m in &self.mods[k].statics {
                let b = match m.behaviour {
                    Behaviour::Add => "add",
                    Behaviour::Sub => "sub",
                };
                write!(
                    f,
                    " M{k}:{{{}, {b}, {}, {}}}",
                    m.target, m.displacement, m.count
                )?;
            }
            for m in &self.mods[k].indirects {
                let b = match m.behaviour {
                    IndirectBehaviour::SetAdd => "set-add",
                    IndirectBehaviour::SetSub => "set-sub",
                    IndirectBehaviour::SetValue => "set-value",
                };
                write!(f, " I{k}:{{{}, {b}, <origin>}}", m.target)?;
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Pattern`] (see `C-BUILDER`).
///
/// Dimensions are appended innermost-first with [`dim`](Self::dim); modifiers
/// attach to the *most recently added* dimension and affect the one before it
/// — mirroring the paper's configuration instruction order
/// (`ss.ld.sta` … `ss.app.mod` … `ss.end`).
#[derive(Debug, Clone)]
pub struct PatternBuilder {
    base: u64,
    width: ElemWidth,
    dims: Vec<Dim>,
    mods: Vec<DimMods>,
    error: Option<PatternError>,
}

impl PatternBuilder {
    fn new(base: u64, width: ElemWidth) -> Self {
        Self {
            base,
            width,
            dims: Vec::new(),
            mods: Vec::new(),
            error: None,
        }
    }

    /// Appends a dimension `{offset, size, stride}` outside all previously
    /// added dimensions.
    pub fn dim(mut self, offset: i64, size: u64, stride: i64) -> Self {
        self.dims.push(Dim::new(offset, size, stride));
        self.mods.push(DimMods::default());
        self
    }

    /// Attaches a static modifier to the most recently added dimension; it
    /// updates `target` of the dimension *inside* it on every iteration.
    pub fn static_mod(
        mut self,
        target: Param,
        behaviour: Behaviour,
        displacement: i64,
        count: u64,
    ) -> Self {
        match self.mods.last_mut() {
            Some(m) => m
                .statics
                .push(StaticMod::new(target, behaviour, displacement, count)),
            None => self.error = Some(PatternError::ModifierOnInnermost),
        }
        self
    }

    /// Attaches an indirect modifier to the most recently added dimension.
    pub fn indirect_mod(
        mut self,
        target: Param,
        behaviour: IndirectBehaviour,
        origin: Pattern,
    ) -> Self {
        match self.mods.last_mut() {
            Some(m) => m
                .indirects
                .push(IndirectMod::new(target, behaviour, origin)),
            None => self.error = Some(PatternError::ModifierOnInnermost),
        }
        self
    }

    /// Attaches an indirect modifier driven by `origin` using a *virtual
    /// outer dimension* sized by the origin stream length, reproducing the
    /// paper's Fig. 3.B5 (`B[A[i]]`) form where the indirect stream declares
    /// a single descriptor plus an indirection.
    ///
    /// This desugars to an explicit outer dimension `{0, origin_len, 0}`
    /// carrying the modifier.
    pub fn indirect_outer(
        mut self,
        target: Param,
        behaviour: IndirectBehaviour,
        origin: Pattern,
        origin_len: u64,
    ) -> Self {
        self.dims.push(Dim::new(0, origin_len, 0));
        let mut mods = DimMods::default();
        mods.indirects
            .push(IndirectMod::new(target, behaviour, origin));
        self.mods.push(mods);
        self
    }

    /// Validates and finalizes the pattern.
    ///
    /// # Errors
    ///
    /// Returns the first constraint violation: missing dimensions, hardware
    /// limits ([`MAX_DIMS`], [`MAX_MODIFIERS`]), modifiers without an inner
    /// dimension to affect, nested indirection, or a misaligned base.
    pub fn build(self) -> Result<Pattern, PatternError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.dims.is_empty() {
            return Err(PatternError::NoDims);
        }
        if self.dims.len() > MAX_DIMS {
            return Err(PatternError::TooManyDims(self.dims.len()));
        }
        let nmods: usize = self.mods.iter().map(DimMods::len).sum();
        if nmods > MAX_MODIFIERS {
            return Err(PatternError::TooManyModifiers(nmods));
        }
        if !self.mods[0].is_empty() {
            return Err(PatternError::ModifierOnInnermost);
        }
        if !self.base.is_multiple_of(self.width.bytes() as u64) {
            return Err(PatternError::Misaligned {
                base: self.base,
                width: self.width,
            });
        }
        for m in &self.mods {
            for ind in &m.indirects {
                if ind.origin.is_indirect() {
                    return Err(PatternError::NestedIndirection);
                }
            }
        }
        Ok(Pattern {
            base: self.base,
            width: self.width,
            dims: self.dims,
            mods: self.mods,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_width_roundtrip() {
        for w in ElemWidth::all() {
            assert_eq!(ElemWidth::from_suffix(w.suffix()), Some(w));
        }
        assert_eq!(ElemWidth::from_suffix('x'), None);
    }

    #[test]
    fn elem_width_bytes() {
        assert_eq!(ElemWidth::Byte.bytes(), 1);
        assert_eq!(ElemWidth::Half.bytes(), 2);
        assert_eq!(ElemWidth::Word.bytes(), 4);
        assert_eq!(ElemWidth::Double.bytes(), 8);
    }

    #[test]
    fn linear_pattern_builds() {
        let p = Pattern::linear(0x100, ElemWidth::Word, 16).unwrap();
        assert_eq!(p.ndims(), 1);
        assert_eq!(p.nominal_len(), 16);
        assert!(!p.is_indirect());
        assert!(!p.has_modifiers());
    }

    #[test]
    fn rejects_no_dims() {
        let err = Pattern::builder(0, ElemWidth::Word).build().unwrap_err();
        assert_eq!(err, PatternError::NoDims);
    }

    #[test]
    fn rejects_too_many_dims() {
        let mut b = Pattern::builder(0, ElemWidth::Word);
        for _ in 0..MAX_DIMS + 1 {
            b = b.dim(0, 2, 1);
        }
        assert!(matches!(b.build(), Err(PatternError::TooManyDims(9))));
    }

    #[test]
    fn rejects_modifier_on_innermost() {
        let err = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 4, 1)
            .static_mod(Param::Size, Behaviour::Add, 1, 4)
            .build()
            .unwrap_err();
        assert_eq!(err, PatternError::ModifierOnInnermost);
    }

    #[test]
    fn rejects_too_many_modifiers() {
        let mut b = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 4, 1)
            .dim(0, 4, 4);
        for _ in 0..MAX_MODIFIERS + 1 {
            b = b.static_mod(Param::Offset, Behaviour::Add, 1, 4);
        }
        assert!(matches!(b.build(), Err(PatternError::TooManyModifiers(8))));
    }

    #[test]
    fn rejects_misaligned_base() {
        let err = Pattern::linear(0x101, ElemWidth::Word, 4).unwrap_err();
        assert!(matches!(err, PatternError::Misaligned { .. }));
    }

    #[test]
    fn rejects_nested_indirection() {
        let inner_origin = Pattern::linear(0, ElemWidth::Word, 4).unwrap();
        let origin = Pattern::builder(0x40, ElemWidth::Word)
            .dim(0, 1, 0)
            .indirect_outer(Param::Offset, IndirectBehaviour::SetAdd, inner_origin, 4)
            .build()
            .unwrap();
        assert!(origin.is_indirect());
        let err = Pattern::builder(0x80, ElemWidth::Word)
            .dim(0, 1, 0)
            .indirect_outer(Param::Offset, IndirectBehaviour::SetAdd, origin, 4)
            .build()
            .unwrap_err();
        assert_eq!(err, PatternError::NestedIndirection);
    }

    #[test]
    fn modifier_counts() {
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 0, 1)
            .dim(0, 4, 8)
            .static_mod(Param::Size, Behaviour::Add, 1, 4)
            .build()
            .unwrap();
        assert_eq!(p.modifier_count(), 1);
        assert!(p.has_modifiers());
        assert!(!p.is_indirect());
        assert_eq!(p.static_mods(1).len(), 1);
        assert_eq!(p.indirect_mods(1).len(), 0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Param::Offset.to_string(), "offset");
        assert_eq!(ElemWidth::Word.to_string(), "w");
        let e = PatternError::TooManyDims(12);
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn pattern_display_is_fig3_notation() {
        let p = Pattern::builder(0x1000, ElemWidth::Word)
            .dim(0, 0, 1)
            .dim(0, 4, 8)
            .static_mod(Param::Size, Behaviour::Add, 1, 4)
            .build()
            .unwrap();
        let s = p.to_string();
        assert!(s.contains("D0:{0, 0, 1}"), "{s}");
        assert!(s.contains("D1:{0, 4, 8}"), "{s}");
        assert!(s.contains("M1:{size, add, 1, 4}"), "{s}");
    }
}
