//! Differential fuzzing of the kernel suite across flavors and vector
//! lengths.
//!
//! Each case picks one of the paper's kernels (Fig. 8, rows A–S) or one of
//! the follow-on DSP/sparse family kernels at a random valid problem size
//! and:
//!
//! 1. runs it in all four [`Flavor`]s, checking committed memory against
//!    the kernel's Rust reference (`Benchmark::check`);
//! 2. validates stream-trace invariants of the UVE run: chunk validity in
//!    `1..=lanes`, and a nonzero element count for every stream;
//! 3. re-runs the UVE program at 16- and 32-byte vector lengths and diffs
//!    the per-stream element totals against the 64-byte run — the stream
//!    descriptor semantics are vector-length-invariant, so the totals (and
//!    the memory result) must not change.
//!
//! Kernel sizes are drawn small enough that a few thousand cases finish in
//! seconds, yet cover the boundary cases fixed problem sizes never hit
//! (non-multiple-of-VLEN lengths, single-row matrices, minimum stencils).

use crate::rng::FuzzRng;
use crate::Engine;
use uve_core::{EmuConfig, Emulator, IndirectPacking, StreamTrace};
use uve_kernels::{
    covariance::Covariance, dsp::ChanEst, dsp::FftStage, dsp::Fir, floyd::FloydWarshall,
    gemm::Gemm, gemver::Gemver, haccmk::Haccmk, irsmk::Irsmk, jacobi::Jacobi1d, jacobi::Jacobi2d,
    knn::Knn, mamr::Mamr, memcpy::Memcpy, mvt::Mvt, saxpy::Saxpy, seidel::Seidel2d,
    sparse::GatherReduce, sparse::Histogram, sparse::Spmv, stream::Stream, threemm::ThreeMm,
    trisolv::Trisolv, Benchmark, Flavor,
};
use uve_mem::Memory;

/// Which kernel a case instantiates, with its randomized size parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelCase {
    /// `memcpy(n)`.
    Memcpy(usize),
    /// STREAM triad family at `n` elements.
    Stream(usize),
    /// `y = a*x + y` over `n` elements.
    Saxpy(usize),
    /// Dense `ni × nk × nj` matrix multiply (`nj` multiple of 16).
    Gemm(usize, usize, usize),
    /// Three chained multiplies at `n × n` (`n` multiple of 16).
    ThreeMm(usize),
    /// `x1 += A y1; x2 += Aᵀ y2` at `n`.
    Mvt(usize),
    /// BLAS gemver at `n`.
    Gemver(usize),
    /// Triangular solve at `n ≥ 2`.
    Trisolv(usize),
    /// 1-D Jacobi, `n ≥ 3` points, `t` steps.
    Jacobi1d(usize, usize),
    /// 2-D Jacobi, `n ≥ 3`, `t` steps.
    Jacobi2d(usize, usize),
    /// 3-D 27-point stencil, `n ≥ 548`.
    Irsmk(usize),
    /// HACC force kernel at `n` particles.
    Haccmk(usize),
    /// k-nearest distances, `n` points × `dim` coordinates.
    Knn(usize, usize),
    /// Covariance of an `n × m` sample matrix (`m` multiple of 16).
    Covariance(usize, usize),
    /// MAMR full-matrix mode at `n`.
    MamrFull(usize),
    /// MAMR diagonal mode at `n`.
    MamrDiag(usize),
    /// MAMR indirect (CSR-like) mode at `n`.
    MamrIndirect(usize),
    /// Gauss–Seidel 2-D, `n ≥ 3`, `t` steps.
    Seidel2d(usize, usize),
    /// All-pairs shortest paths at `n` vertices.
    Floyd(usize),
    /// FIR filter, `n` outputs × `taps` coefficients.
    Fir(usize, usize),
    /// Complex pilot correlation over `n` sample pairs.
    ChanEst(usize),
    /// One radix-2 FFT butterfly stage, `n` points (power of two), stage
    /// index with `2^(stage+1) ≤ n`.
    FftStage(usize, usize),
    /// CSR SpMV: `rows × cols` with `1..=maxlen` nonzeros per row.
    Spmv(usize, usize, usize),
    /// `Σ data[idx[i]]` over `m` gathers from a `dn`-entry table.
    GatherReduce(usize, usize),
    /// `hist[idx[i]] += 1` over `m` samples into `nbins ≥ 16` bins.
    Histogram(usize, usize),
}

impl KernelCase {
    /// Instantiates the benchmark.
    pub fn bench(&self) -> Box<dyn Benchmark> {
        match *self {
            KernelCase::Memcpy(n) => Box::new(Memcpy::new(n)),
            KernelCase::Stream(n) => Box::new(Stream::new(n)),
            KernelCase::Saxpy(n) => Box::new(Saxpy::new(n)),
            KernelCase::Gemm(ni, nj, nk) => Box::new(Gemm::new(ni, nj, nk)),
            KernelCase::ThreeMm(n) => Box::new(ThreeMm::new(n)),
            KernelCase::Mvt(n) => Box::new(Mvt::new(n)),
            KernelCase::Gemver(n) => Box::new(Gemver::new(n)),
            KernelCase::Trisolv(n) => Box::new(Trisolv::new(n)),
            KernelCase::Jacobi1d(n, t) => Box::new(Jacobi1d::new(n, t)),
            KernelCase::Jacobi2d(n, t) => Box::new(Jacobi2d::new(n, t)),
            KernelCase::Irsmk(n) => Box::new(Irsmk::new(n)),
            KernelCase::Haccmk(n) => Box::new(Haccmk::new(n)),
            KernelCase::Knn(n, d) => Box::new(Knn::new(n, d)),
            KernelCase::Covariance(m, n) => Box::new(Covariance::new(m, n)),
            KernelCase::MamrFull(n) => Box::new(Mamr::full(n)),
            KernelCase::MamrDiag(n) => Box::new(Mamr::diag(n)),
            KernelCase::MamrIndirect(n) => Box::new(Mamr::indirect(n)),
            KernelCase::Seidel2d(n, t) => Box::new(Seidel2d::new(n, t)),
            KernelCase::Floyd(n) => Box::new(FloydWarshall::new(n)),
            KernelCase::Fir(n, taps) => Box::new(Fir::new(n, taps)),
            KernelCase::ChanEst(n) => Box::new(ChanEst::new(n)),
            KernelCase::FftStage(n, s) => Box::new(FftStage::new(n, s as u32)),
            KernelCase::Spmv(r, c, l) => Box::new(Spmv::new(r, c, l)),
            KernelCase::GatherReduce(m, dn) => Box::new(GatherReduce::new(m, dn)),
            KernelCase::Histogram(m, b) => Box::new(Histogram::new(m, b)),
        }
    }

    /// Shrunk-size candidates (smaller instances of the same kernel).
    pub(crate) fn smaller(&self) -> Vec<KernelCase> {
        use KernelCase::*;
        fn half(n: usize, min: usize) -> Option<usize> {
            (n > min).then(|| (n / 2).max(min))
        }
        match *self {
            Memcpy(n) => half(n, 1).map(Memcpy).into_iter().collect(),
            Stream(n) => half(n, 1).map(Stream).into_iter().collect(),
            Saxpy(n) => half(n, 1).map(Saxpy).into_iter().collect(),
            Gemm(ni, nj, nk) => {
                let mut v = Vec::new();
                if let Some(m) = half(ni, 1) {
                    v.push(Gemm(m, nj, nk));
                }
                if nj > 16 {
                    v.push(Gemm(ni, 16, nk));
                }
                if let Some(m) = half(nk, 1) {
                    v.push(Gemm(ni, nj, m));
                }
                v
            }
            ThreeMm(n) => (n > 16).then_some(ThreeMm(16)).into_iter().collect(),
            Mvt(n) => half(n, 1).map(Mvt).into_iter().collect(),
            Gemver(n) => half(n, 1).map(Gemver).into_iter().collect(),
            Trisolv(n) => half(n, 2).map(Trisolv).into_iter().collect(),
            Jacobi1d(n, t) => {
                let mut v: Vec<_> = half(n, 3).map(|m| Jacobi1d(m, t)).into_iter().collect();
                if t > 1 {
                    v.push(Jacobi1d(n, 1));
                }
                v
            }
            Jacobi2d(n, t) => {
                let mut v: Vec<_> = half(n, 3).map(|m| Jacobi2d(m, t)).into_iter().collect();
                if t > 1 {
                    v.push(Jacobi2d(n, 1));
                }
                v
            }
            Irsmk(n) => half(n, 548).map(Irsmk).into_iter().collect(),
            Haccmk(n) => half(n, 1).map(Haccmk).into_iter().collect(),
            Knn(n, d) => {
                let mut v: Vec<_> = half(n, 1).map(|m| Knn(m, d)).into_iter().collect();
                if let Some(m) = half(d, 1) {
                    v.push(Knn(n, m));
                }
                v
            }
            Covariance(m, n) => {
                let mut v = Vec::new();
                if m > 16 {
                    v.push(Covariance(16, n));
                }
                if let Some(k) = half(n, 2) {
                    v.push(Covariance(m, k));
                }
                v
            }
            MamrFull(n) => half(n, 1).map(MamrFull).into_iter().collect(),
            MamrDiag(n) => half(n, 1).map(MamrDiag).into_iter().collect(),
            MamrIndirect(n) => half(n, 1).map(MamrIndirect).into_iter().collect(),
            Seidel2d(n, t) => {
                let mut v: Vec<_> = half(n, 3).map(|m| Seidel2d(m, t)).into_iter().collect();
                if t > 1 {
                    v.push(Seidel2d(n, 1));
                }
                v
            }
            Floyd(n) => half(n, 1).map(Floyd).into_iter().collect(),
            Fir(n, taps) => {
                let mut v: Vec<_> = half(n, 1).map(|m| Fir(m, taps)).into_iter().collect();
                if let Some(t) = half(taps, 1) {
                    v.push(Fir(n, t));
                }
                v
            }
            ChanEst(n) => half(n, 1).map(ChanEst).into_iter().collect(),
            FftStage(n, s) => {
                let mut v = Vec::new();
                if n > 16 && (1usize << (s + 1)) <= n / 2 {
                    v.push(FftStage(n / 2, s));
                }
                if s > 0 {
                    v.push(FftStage(n, s - 1));
                }
                v
            }
            Spmv(r, c, l) => {
                let mut v = Vec::new();
                if let Some(m) = half(r, 1) {
                    v.push(Spmv(m, c, l));
                }
                if let Some(m) = half(c, 1) {
                    v.push(Spmv(r, m, l));
                }
                if let Some(m) = half(l, 1) {
                    v.push(Spmv(r, c, m));
                }
                v
            }
            GatherReduce(m, dn) => {
                let mut v: Vec<_> = half(m, 1)
                    .map(|k| GatherReduce(k, dn))
                    .into_iter()
                    .collect();
                if let Some(k) = half(dn, 1) {
                    v.push(GatherReduce(m, k));
                }
                v
            }
            Histogram(m, b) => {
                let mut v: Vec<_> = half(m, 1).map(|k| Histogram(k, b)).into_iter().collect();
                if b > 16 {
                    v.push(Histogram(m, 16));
                }
                v
            }
        }
    }
}

pub(crate) fn gen_case(rng: &mut FuzzRng) -> KernelCase {
    match rng.below(25) {
        0 => KernelCase::Memcpy(rng.range_usize(1, 256)),
        1 => KernelCase::Stream(rng.range_usize(1, 256)),
        2 => KernelCase::Saxpy(rng.range_usize(1, 256)),
        3 => KernelCase::Gemm(
            rng.range_usize(1, 6),
            16 * rng.range_usize(1, 2),
            rng.range_usize(1, 6),
        ),
        4 => KernelCase::ThreeMm(16 * rng.range_usize(1, 2)),
        5 => KernelCase::Mvt(rng.range_usize(1, 48)),
        6 => KernelCase::Gemver(rng.range_usize(1, 48)),
        7 => KernelCase::Trisolv(rng.range_usize(2, 48)),
        8 => KernelCase::Jacobi1d(rng.range_usize(3, 256), rng.range_usize(1, 3)),
        9 => KernelCase::Jacobi2d(rng.range_usize(3, 20), rng.range_usize(1, 2)),
        10 => KernelCase::Irsmk(rng.range_usize(548, 640)),
        11 => KernelCase::Haccmk(rng.range_usize(1, 48)),
        12 => KernelCase::Knn(rng.range_usize(1, 96), rng.range_usize(1, 8)),
        13 => KernelCase::Covariance(16 * rng.range_usize(1, 2), rng.range_usize(2, 20)),
        14 => KernelCase::MamrFull(rng.range_usize(1, 40)),
        15 => KernelCase::MamrDiag(rng.range_usize(1, 40)),
        16 => KernelCase::MamrIndirect(rng.range_usize(1, 40)),
        17 => KernelCase::Seidel2d(rng.range_usize(3, 20), rng.range_usize(1, 2)),
        18 => KernelCase::Floyd(rng.range_usize(1, 20)),
        19 => KernelCase::Fir(rng.range_usize(1, 48), rng.range_usize(1, 24)),
        20 => KernelCase::ChanEst(rng.range_usize(1, 96)),
        21 => {
            let n = 1usize << rng.range_usize(4, 7);
            KernelCase::FftStage(n, rng.range_usize(0, n.trailing_zeros() as usize - 1))
        }
        22 => KernelCase::Spmv(
            rng.range_usize(1, 24),
            rng.range_usize(1, 48),
            rng.range_usize(1, 24),
        ),
        23 => KernelCase::GatherReduce(rng.range_usize(1, 128), rng.range_usize(1, 96)),
        _ => KernelCase::Histogram(rng.range_usize(1, 128), 16 * rng.range_usize(1, 4)),
    }
}

/// Runs `bench`'s UVE program at an explicit vector length and
/// indirect-chunking mode, checks the memory result, and returns the
/// stream traces.
fn run_uve_at(
    bench: &dyn Benchmark,
    vlen_bytes: usize,
    packing: IndirectPacking,
) -> Result<Vec<StreamTrace>, String> {
    let cfg = EmuConfig {
        vlen_bytes,
        packing,
        ..EmuConfig::default()
    };
    let mut emu = Emulator::new(cfg, Memory::new());
    bench.setup(&mut emu);
    let program = bench.program(Flavor::Uve);
    let result = emu
        .run(&program)
        .map_err(|e| format!("{}/uve@vl{vlen_bytes}/{packing:?}: {e}", bench.name()))?;
    bench
        .check(&emu)
        .map_err(|e| format!("{}/uve@vl{vlen_bytes}/{packing:?}: {e}", bench.name()))?;
    Ok(result.trace.streams)
}

/// Per-stream summary used for the cross-vector-length diff.
fn summarize(streams: &[StreamTrace]) -> Vec<(u8, uve_isa::Dir, uve_isa::MemLevel, u64)> {
    streams
        .iter()
        .map(|s| (s.u, s.dir, s.level, s.elements()))
        .collect()
}

/// The kernel-differ engine.
pub struct KernelEngine;

impl Engine for KernelEngine {
    type Case = KernelCase;

    fn name() -> &'static str {
        "kernel"
    }

    fn generate(rng: &mut FuzzRng) -> KernelCase {
        gen_case(rng)
    }

    fn check(case: &KernelCase) -> Result<(), String> {
        let bench = case.bench();

        // 1. Every flavor against the Rust reference.
        for flavor in Flavor::all() {
            uve_kernels::run_checked(bench.as_ref(), flavor).map_err(|e| e.to_string())?;
        }

        // 2 + 3. UVE stream-trace invariants and vector-length invariance.
        let base = run_uve_at(
            bench.as_ref(),
            Flavor::Uve.vlen_bytes(),
            IndirectPacking::Packed,
        )?;
        for s in &base {
            let lanes = Flavor::Uve.vlen_bytes() / s.width.bytes();
            for (i, c) in s.chunks.iter().enumerate() {
                if c.valid < 1 || c.valid as usize > lanes {
                    return Err(format!(
                        "{}: stream u{} chunk {i} has valid {} outside 1..={lanes}",
                        bench.name(),
                        s.u,
                        c.valid
                    ));
                }
            }
            // Indirection-origin streams legitimately transfer zero
            // elements: their pattern is absorbed into the indirect
            // stream's modifier at configuration time and their lines are
            // billed to the consuming stream. Output streams, by contrast,
            // must always commit data.
            if s.dir == uve_isa::Dir::Store && s.elements() == 0 {
                return Err(format!(
                    "{}: store stream u{} moved no elements",
                    bench.name(),
                    s.u
                ));
            }
        }
        let want = summarize(&base);
        for vlen in [16usize, 32] {
            let got = summarize(&run_uve_at(bench.as_ref(), vlen, IndirectPacking::Packed)?);
            if got != want {
                return Err(format!(
                    "{}: stream summary at vl{vlen} differs from vl64:\n  vl{vlen}: {got:?}\n  \
                     vl64:  {want:?}",
                    bench.name()
                ));
            }
        }

        // 4. Packed-vs-unpacked differential: the unpacked re-run must pass
        // the same memory check (done inside `run_uve_at`) and move the same
        // per-stream element totals — packing only re-draws the chunk
        // boundaries of indirect streams, it never changes what flows.
        let unpacked = summarize(&run_uve_at(
            bench.as_ref(),
            Flavor::Uve.vlen_bytes(),
            IndirectPacking::Unpacked,
        )?);
        if unpacked != want {
            return Err(format!(
                "{}: unpacked stream summary differs from packed:\n  unpacked: {unpacked:?}\n  \
                 packed:   {want:?}",
                bench.name()
            ));
        }
        Ok(())
    }

    fn shrink(case: &KernelCase) -> Vec<KernelCase> {
        case.smaller()
    }
}
