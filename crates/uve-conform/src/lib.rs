//! `uve-conform`: an offline differential-fuzzing and conformance
//! subsystem for the UVE reproduction.
//!
//! The paper's claims rest on streams producing *exactly* the access
//! sequences and results of the code they replace, so this crate
//! cross-checks the three trusted layers against independent oracles:
//!
//! - [`pattern_fuzz`] — random valid [`uve_stream::Pattern`]s checked
//!   against a naive recursive address/end-flag oracle, including
//!   `SavedWalker` save/restore at random mid-vector cuts;
//! - [`isa_fuzz`] — random instructions round-tripped through
//!   encode→decode→re-encode and disassemble→assemble, plus
//!   decode-of-random-`u32` robustness;
//! - [`asm_fuzz`] — the assembler front end: random constructible
//!   programs (labels included) round-tripped through
//!   `disassemble_program → assemble` to an exact fixpoint, `.include`
//!   unit splits checked identical, and hostile mutated text checked to
//!   return typed spanned errors without ever panicking;
//! - [`kernel_diff`] — randomly sized instances of the paper's kernels run
//!   across all four [`uve_kernels::Flavor`]s and cross-checked against
//!   the Rust reference and across vector lengths;
//! - [`stats_diff`] — the cycle-accounting observability layer: random
//!   small timing runs checked for conservation (stall categories
//!   partition the cycles) and for bit-identical statistics between the
//!   serial and parallel evaluation runners;
//! - [`fault_fuzz`] — the fault subsystem: random kernels run under
//!   injected stream faults and hostile memory-hierarchy schedules,
//!   checked to never panic, to recover bit-identically (memory and
//!   architectural state) and to keep the cycle accounting conserved;
//! - [`smp_fuzz`] — the multicore subsystem: random kernels sharded over
//!   MOESI-coherent cores and time-sliced by the preemptive scheduler,
//!   checked for the single-writer invariant, per-core/per-program cycle
//!   conservation, scheduler liveness, run-twice determinism, and
//!   architecturally invisible context switching;
//! - [`sweep_fuzz`] — the distributed sweep service's pure core: random
//!   protocol messages round-tripped through the hand-rolled wire codec
//!   (encode→decode→re-encode fixpoint), truncated and corrupted frames
//!   checked to decode gracefully, and randomized grids merged through
//!   the coordinator's assembly in shuffled completion orders, checked
//!   bit-identical to the in-order merge;
//! - [`exec_diff`] — the translated execution mode: random kernel
//!   instances, flavors and vector lengths run under both
//!   [`uve_core::ExecMode`]s and diffed for bit-identical traces,
//!   architectural digests, memory and per-stream element totals,
//!   including budgeted-resume slicing and fault-plan recovery.
//!
//! Everything is registry-free and deterministic: cases derive from
//! `(seed, engine, case index)` via the workspace's SplitMix64
//! ([`rng::FuzzRng`]), failures shrink greedily to a minimal
//! reproduction, and the checked-in corpus (`corpus/regressions.txt`)
//! replays formerly failing cases as a tier-1 test.

pub mod asm_fuzz;
pub mod exec_diff;
pub mod fault_fuzz;
pub mod isa_fuzz;
pub mod kernel_diff;
pub mod pattern_fuzz;
pub mod rng;
pub mod smp_fuzz;
pub mod stats_diff;
pub mod sweep_fuzz;

pub use rng::FuzzRng;
use uve_bench::{pool, RunMode};

/// A differential-fuzzing engine: deterministic case generation, a check
/// against an independent oracle, and structural shrinking.
pub trait Engine {
    /// One generated test case.
    type Case: Clone + std::fmt::Debug + Send;

    /// Engine name as used by the CLI and the corpus (`pattern`, `isa`,
    /// `asm`, `kernel`, `stats`, `fault`, `smp`, `exec`, `sweep`).
    fn name() -> &'static str;

    /// Generates the case owned by `rng` (must consume randomness only
    /// from `rng` so a `(seed, case)` pair replays bit-identically).
    fn generate(rng: &mut FuzzRng) -> Self::Case;

    /// Checks `case` against the engine's oracle.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first mismatch.
    fn check(case: &Self::Case) -> Result<(), String>;

    /// Candidate one-step simplifications of `case`, most aggressive
    /// first. The greedy shrinker keeps any candidate that still fails.
    fn shrink(case: &Self::Case) -> Vec<Self::Case>;
}

/// A failing case, minimized and ready to report.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Engine that found it.
    pub engine: &'static str,
    /// Master seed of the run.
    pub seed: u64,
    /// Case index within the run.
    pub case: u64,
    /// Oracle mismatch of the original case.
    pub error: String,
    /// Debug rendering of the greedily shrunk case.
    pub minimized: String,
    /// Mismatch reported by the shrunk case.
    pub minimized_error: String,
}

impl Failure {
    /// The line to append to `corpus/regressions.txt`.
    pub fn corpus_line(&self) -> String {
        let summary: String = self.minimized_error.chars().take(80).collect();
        format!(
            "{} {} {} # {}",
            self.engine,
            self.seed,
            self.case,
            summary.replace('\n', " ")
        )
    }

    /// A ready-to-paste regression test.
    pub fn regression_test(&self) -> String {
        format!(
            "#[test]\nfn {}_seed{}_case{}() {{\n    \
             uve_conform::replay_one(\"{}\", {}, {}).unwrap();\n}}",
            self.engine, self.seed, self.case, self.engine, self.seed, self.case
        )
    }
}

/// Outcome of one engine run.
#[derive(Debug)]
pub struct EngineReport {
    /// Engine name.
    pub engine: &'static str,
    /// Master seed.
    pub seed: u64,
    /// Cases executed.
    pub cases: u64,
    /// Failures in case order, minimized.
    pub failures: Vec<Failure>,
}

impl EngineReport {
    /// Renders the deterministic human report (no timing, no thread IDs —
    /// byte-identical across `--jobs` settings).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "[{}] {} cases, seed {}: {} failure(s)",
            self.engine,
            self.cases,
            self.seed,
            self.failures.len()
        );
        for f in &self.failures {
            let _ = writeln!(out, "[{}] FAILURE case {}: {}", f.engine, f.case, f.error);
            let _ = writeln!(out, "  minimized: {}", f.minimized);
            let _ = writeln!(out, "  minimized error: {}", f.minimized_error);
            let _ = writeln!(out, "  corpus line: {}", f.corpus_line());
            let _ = writeln!(out, "  regression test:\n{}", indent(&f.regression_test()));
        }
        out
    }
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs one case of `E` and returns its failure, if any, minimized.
fn run_case<E: Engine>(seed: u64, case: u64) -> Option<Failure> {
    let mut rng = FuzzRng::for_case(seed, E::name(), case);
    let generated = E::generate(&mut rng);
    let error = E::check(&generated).err()?;
    let minimized = shrink::<E>(generated);
    let minimized_error = E::check(&minimized)
        .err()
        .unwrap_or_else(|| "shrunk case no longer fails".to_string());
    Some(Failure {
        engine: E::name(),
        seed,
        case,
        error,
        minimized: format!("{minimized:?}"),
        minimized_error,
    })
}

/// Greedy shrink: repeatedly takes the first candidate simplification that
/// still fails, until none does (bounded to keep pathological cases from
/// looping).
fn shrink<E: Engine>(mut case: E::Case) -> E::Case {
    for _ in 0..1000 {
        let mut improved = false;
        for cand in E::shrink(&case) {
            if E::check(&cand).is_err() {
                case = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    case
}

/// Runs `cases` cases of engine `E` on the shared worker pool and collects
/// the (deterministic, case-ordered) report.
pub fn run_engine<E: Engine>(seed: u64, cases: u64, mode: RunMode) -> EngineReport {
    let failures: Vec<Failure> =
        pool::run_indexed(mode, cases as usize, |i| run_case::<E>(seed, i as u64))
            .into_iter()
            .flatten()
            .collect();
    EngineReport {
        engine: E::name(),
        seed,
        cases,
        failures,
    }
}

/// Replays one `(engine, seed, case)` triple — the corpus/regression entry
/// point.
///
/// # Errors
///
/// Returns the oracle mismatch if the case still fails, or an error for an
/// unknown engine name.
pub fn replay_one(engine: &str, seed: u64, case: u64) -> Result<(), String> {
    fn one<E: Engine>(seed: u64, case: u64) -> Result<(), String> {
        let mut rng = FuzzRng::for_case(seed, E::name(), case);
        E::check(&E::generate(&mut rng))
            .map_err(|e| format!("{} seed={seed} case={case}: {e}", E::name()))
    }
    match engine {
        "pattern" => one::<pattern_fuzz::PatternEngine>(seed, case),
        "isa" => one::<isa_fuzz::IsaEngine>(seed, case),
        "asm" => one::<asm_fuzz::AsmEngine>(seed, case),
        "kernel" => one::<kernel_diff::KernelEngine>(seed, case),
        "stats" => one::<stats_diff::StatsEngine>(seed, case),
        "fault" => one::<fault_fuzz::FaultEngine>(seed, case),
        "smp" => one::<smp_fuzz::SmpEngine>(seed, case),
        "exec" => one::<exec_diff::ExecEngine>(seed, case),
        "sweep" => one::<sweep_fuzz::SweepEngine>(seed, case),
        other => Err(format!("unknown engine {other:?}")),
    }
}

/// Parses the corpus text format: one `engine seed case [# comment]` entry
/// per line; blank lines and `#` comment lines are skipped.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_corpus(text: &str) -> Result<Vec<(String, u64, u64)>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let entry = (|| {
            let engine = it.next()?.to_string();
            let seed = it.next()?.parse().ok()?;
            let case = it.next()?.parse().ok()?;
            Some((engine, seed, case))
        })()
        .ok_or_else(|| format!("corpus line {}: malformed entry {raw:?}", lineno + 1))?;
        out.push(entry);
    }
    Ok(out)
}

/// The checked-in regression corpus.
pub const CORPUS: &str = include_str!("../corpus/regressions.txt");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses() {
        let entries = parse_corpus(CORPUS).unwrap();
        for (engine, _, _) in &entries {
            assert!(matches!(
                engine.as_str(),
                "pattern" | "isa" | "asm" | "kernel" | "stats" | "fault" | "smp" | "exec" | "sweep"
            ));
        }
    }

    #[test]
    fn corpus_rejects_garbage() {
        assert!(parse_corpus("pattern seven 3").is_err());
        assert!(parse_corpus("# comment only\n\n").unwrap().is_empty());
    }
}
