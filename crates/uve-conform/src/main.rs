//! `uve-conform` — offline differential fuzzer for the UVE reproduction.
//!
//! ```text
//! uve-conform [--engine pattern|isa|asm|kernel|stats|fault|smp|exec|sweep|all] [--seed N]
//!             [--cases N] [--jobs N | --serial] [--quiet]
//! ```
//!
//! Output is deterministic for a given `(engine, seed, cases)` triple:
//! cases are numbered, each case derives its RNG from `(seed, engine,
//! index)` alone, and failures are reported in case order — so `--jobs 1`
//! and `--jobs 8` print bit-identical reports. Exit status is the number
//! of failing engines (0 on full success), making the binary usable as a
//! CI gate.

use std::process::ExitCode;
use uve_bench::{default_jobs, RunMode};
use uve_conform::{
    asm_fuzz::AsmEngine, exec_diff::ExecEngine, fault_fuzz::FaultEngine, isa_fuzz::IsaEngine,
    kernel_diff::KernelEngine, pattern_fuzz::PatternEngine, smp_fuzz::SmpEngine,
    stats_diff::StatsEngine, sweep_fuzz::SweepEngine,
};

const USAGE: &str =
    "usage: uve-conform [--engine pattern|isa|asm|kernel|stats|fault|smp|exec|sweep|all] \
                     [--seed N] [--cases N] [--jobs N | --serial] [--quiet]";

struct Opts {
    engine: String,
    seed: u64,
    cases: u64,
    mode: RunMode,
    quiet: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        engine: "all".to_string(),
        seed: 7,
        cases: 1000,
        mode: RunMode::Parallel(default_jobs()),
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--engine" => opts.engine = value("--engine")?,
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--cases" => {
                opts.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("bad --cases: {e}"))?;
            }
            "--jobs" => {
                let n: usize = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
                opts.mode = if n <= 1 {
                    RunMode::Serial
                } else {
                    RunMode::Parallel(n)
                };
            }
            "--serial" => opts.mode = RunMode::Serial,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    match opts.engine.as_str() {
        "pattern" | "isa" | "asm" | "kernel" | "stats" | "fault" | "smp" | "exec" | "sweep"
        | "all" => Ok(opts),
        other => Err(format!("unknown engine {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let run_pattern = matches!(opts.engine.as_str(), "pattern" | "all");
    let run_isa = matches!(opts.engine.as_str(), "isa" | "all");
    let run_asm = matches!(opts.engine.as_str(), "asm" | "all");
    let run_kernel = matches!(opts.engine.as_str(), "kernel" | "all");
    let run_stats = matches!(opts.engine.as_str(), "stats" | "all");
    let run_fault = matches!(opts.engine.as_str(), "fault" | "all");
    let run_smp = matches!(opts.engine.as_str(), "smp" | "all");
    let run_exec = matches!(opts.engine.as_str(), "exec" | "all");
    let run_sweep = matches!(opts.engine.as_str(), "sweep" | "all");

    let mut failed_engines = 0u8;
    let mut report = |r: uve_conform::EngineReport| {
        if !r.failures.is_empty() {
            failed_engines += 1;
        }
        if !opts.quiet || !r.failures.is_empty() {
            println!("{}", r.render());
        }
    };

    if run_pattern {
        report(uve_conform::run_engine::<PatternEngine>(
            opts.seed, opts.cases, opts.mode,
        ));
    }
    if run_isa {
        report(uve_conform::run_engine::<IsaEngine>(
            opts.seed, opts.cases, opts.mode,
        ));
    }
    if run_asm {
        // Pure text/codec work, no emulation: full case budget.
        report(uve_conform::run_engine::<AsmEngine>(
            opts.seed, opts.cases, opts.mode,
        ));
    }
    if run_kernel {
        report(uve_conform::run_engine::<KernelEngine>(
            opts.seed, opts.cases, opts.mode,
        ));
    }
    if run_stats {
        // Each stats case runs the timing model four times (two passes ×
        // two runner modes), so under `all` it gets a tenth of the case
        // budget; an explicit `--engine stats` runs the full count.
        let cases = if opts.engine == "all" {
            (opts.cases / 10).max(1)
        } else {
            opts.cases
        };
        report(uve_conform::run_engine::<StatsEngine>(
            opts.seed, cases, opts.mode,
        ));
    }
    if run_fault {
        // Each fault case emulates the kernel at least twice and replays
        // the faulted trace once, so it gets the same reduced budget as
        // the stats engine under `all`.
        let cases = if opts.engine == "all" {
            (opts.cases / 10).max(1)
        } else {
            opts.cases
        };
        report(uve_conform::run_engine::<FaultEngine>(
            opts.seed, cases, opts.mode,
        ));
    }
    if run_smp {
        // Each smp case runs the timing model 2·cores + 2 times plus the
        // functional scheduler, so it gets a twentieth of the case budget
        // under `all`; an explicit `--engine smp` runs the full count.
        let cases = if opts.engine == "all" {
            (opts.cases / 20).max(1)
        } else {
            opts.cases
        };
        report(uve_conform::run_engine::<SmpEngine>(
            opts.seed, cases, opts.mode,
        ));
    }
    if run_exec {
        // Each exec case emulates the kernel four to six times (traced and
        // untraced in both modes, plus sliced and faulted re-runs), so it
        // gets the same reduced budget as the stats engine under `all`.
        let cases = if opts.engine == "all" {
            (opts.cases / 10).max(1)
        } else {
            opts.cases
        };
        report(uve_conform::run_engine::<ExecEngine>(
            opts.seed, cases, opts.mode,
        ));
    }
    if run_sweep {
        // Sweep cases are pure codec and merge work (no emulation), so
        // they run at the full case budget even under `all`.
        report(uve_conform::run_engine::<SweepEngine>(
            opts.seed, opts.cases, opts.mode,
        ));
    }

    ExitCode::from(failed_engines)
}
