//! Differential fuzzing of the cycle-accounting observability layer.
//!
//! Each case picks a small kernel instance, a flavor, and a Streaming
//! Engine FIFO depth, then runs the full measurement path twice — once on
//! a strictly serial [`Runner`] and once on a two-worker pool — and
//! checks:
//!
//! 1. every conservation law of the run ([`StatsReport::check`]): the
//!    stall categories partition the cycles, the FIFO occupancy histogram
//!    accounts for every open stream-cycle, and the memory latency
//!    profile accounts for every demand read and DRAM transaction;
//! 2. the two [`TimingStats`] are **bit-identical** — the parallel runner
//!    must not perturb a single counter;
//! 3. the rendered `--explain` report strings are byte-identical.
//!
//! Kernel sizes are capped well below the figure-generation sizes so a
//! few thousand cases stay cheap: the point is coverage of the
//! *accounting*, which exercises every stall category already at tiny
//! problem sizes (startup = frontend, drain = fifo-empty, stores =
//! fifo-full, …).

use crate::kernel_diff::KernelCase;
use crate::rng::FuzzRng;
use crate::Engine;
use uve_bench::{Job, Runner, StatsReport};
use uve_core::engine::EngineConfig;
use uve_cpu::CpuConfig;
use uve_kernels::Flavor;

/// One stats-conformance case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsCase {
    /// The kernel instance to measure.
    pub kernel: KernelCase,
    /// Code flavour to run it in.
    pub flavor: Flavor,
    /// Streaming Engine FIFO depth (a timing-only knob the accounting
    /// must stay conserved under).
    pub fifo_depth: usize,
}

fn gen_kernel(rng: &mut FuzzRng) -> KernelCase {
    match rng.below(12) {
        0 => KernelCase::Memcpy(rng.range_usize(1, 96)),
        1 => KernelCase::Stream(rng.range_usize(1, 96)),
        2 => KernelCase::Saxpy(rng.range_usize(1, 96)),
        3 => KernelCase::Gemm(rng.range_usize(1, 4), 16, rng.range_usize(1, 4)),
        4 => KernelCase::Mvt(rng.range_usize(1, 24)),
        5 => KernelCase::Trisolv(rng.range_usize(2, 24)),
        6 => KernelCase::Jacobi1d(rng.range_usize(3, 96), 1),
        7 => KernelCase::Haccmk(rng.range_usize(1, 24)),
        8 => KernelCase::Knn(rng.range_usize(1, 48), rng.range_usize(1, 4)),
        9 => KernelCase::MamrFull(rng.range_usize(1, 24)),
        10 => KernelCase::MamrIndirect(rng.range_usize(1, 24)),
        _ => KernelCase::Seidel2d(rng.range_usize(3, 12), 1),
    }
}

/// The stats-conformance engine.
pub struct StatsEngine;

impl Engine for StatsEngine {
    type Case = StatsCase;

    fn name() -> &'static str {
        "stats"
    }

    fn generate(rng: &mut FuzzRng) -> StatsCase {
        StatsCase {
            kernel: gen_kernel(rng),
            flavor: *rng.pick(&[Flavor::Uve, Flavor::Sve, Flavor::Neon, Flavor::Scalar]),
            fifo_depth: *rng.pick(&[2usize, 4, 8, 12]),
        }
    }

    fn check(case: &StatsCase) -> Result<(), String> {
        let bench = case.kernel.bench();
        let cpu = CpuConfig {
            engine: EngineConfig {
                fifo_depth: case.fifo_depth,
                ..EngineConfig::default()
            },
            ..CpuConfig::default()
        };
        let measure = |runner: &Runner| {
            runner
                .run(&[Job::new(bench.as_ref(), case.flavor, cpu.clone())])
                .remove(0)
        };
        let serial = measure(&Runner::serial().verbose(false));
        let parallel = measure(&Runner::parallel(2).verbose(false));

        let report = StatsReport::of(std::slice::from_ref(&serial));
        report
            .check()
            .map_err(|e| format!("conservation law violated: {e}"))?;

        if serial.committed != parallel.committed {
            return Err(format!(
                "{}/{}: committed differs: serial {} vs parallel {}",
                serial.name, case.flavor, serial.committed, parallel.committed
            ));
        }
        if serial.stats != parallel.stats {
            return Err(format!(
                "{}/{}: TimingStats not bit-identical across runner modes:\n\
                 serial:   {:?}\nparallel: {:?}",
                serial.name, case.flavor, serial.stats, parallel.stats
            ));
        }
        let rendered = report.render();
        let rendered_par = StatsReport::of(&[parallel]).render();
        if rendered != rendered_par {
            return Err(format!(
                "{}/{}: --explain report differs across runner modes:\n{rendered}\nvs\n{rendered_par}",
                serial.name, case.flavor
            ));
        }
        Ok(())
    }

    fn shrink(case: &StatsCase) -> Vec<StatsCase> {
        let mut out: Vec<StatsCase> = case
            .kernel
            .smaller()
            .into_iter()
            .map(|kernel| StatsCase { kernel, ..*case })
            .collect();
        if case.fifo_depth > 2 {
            out.push(StatsCase {
                fifo_depth: 2,
                ..*case
            });
        }
        if case.flavor != Flavor::Scalar {
            out.push(StatsCase {
                flavor: Flavor::Scalar,
                ..*case
            });
        }
        out
    }
}
