//! Differential fuzzing of the ISA codec.
//!
//! Each case draws one random instruction spanning every [`Inst`] variant
//! (~450 opcode × sub-op combinations) with fields inside their encodable
//! ranges, then checks:
//!
//! - binary round trip: `encode → decode` reproduces the instruction and
//!   re-encoding reproduces the word;
//! - text round trip: `Display → assemble` reproduces the instruction
//!   (branch targets print as absolute indices, which the assembler
//!   accepts as numeric targets);
//! - decode robustness: a batch of random `u32` words must never panic,
//!   and every word that decodes must re-encode to a decodable fixpoint;
//! - typed rejection: a deliberately out-of-range construction must
//!   produce the exact [`EncodeError`] variant, not a panic or silent
//!   truncation.
//!
//! The robustness checks are what originally surfaced the two codec bugs
//! fixed in this crate's first corpus entries: `ss.branch` dimension
//! indices ≥ 8 silently corrupted the word, and decoded negative branch
//! displacements wrapped to huge absolute targets.

use crate::rng::FuzzRng;
use crate::Engine;
use uve_isa::{
    assemble, decode, encode, AluOp, BrCond, DecodeError, Dir, DupSrc, EncodeError, FReg, FpOp,
    FpUnOp, HorizOp, Inst, MemLevel, PReg, PredCond, PredOp, StreamCond, StreamCtl, VCmpOp, VOp,
    VReg, VType, VUnOp, XReg,
};
use uve_stream::{Behaviour, ElemWidth, IndirectBehaviour, Param};

/// One ISA-fuzzer case.
#[derive(Debug, Clone)]
pub struct IsaCase {
    /// The instruction under test.
    pub inst: Inst,
    /// PC at which it is encoded (branch targets are PC-relative).
    pub pc: u32,
    /// Random words for the decode-robustness sweep.
    pub raw_words: Vec<u32>,
    /// Deliberately out-of-range construction to check typed rejection.
    pub invalid: Option<InvalidEncode>,
}

/// A construction that must produce a specific [`EncodeError`].
#[derive(Debug, Clone, Copy)]
pub enum InvalidEncode {
    /// `ss.branch` on a dimension index ≥ 8 (3-bit field).
    DimTooLarge(u8),
    /// Lane index ≥ 64 on a vector extract.
    LaneTooLarge(u8),
    /// Data-processing predicate above `p7`.
    PredTooLarge(u8),
    /// Immediate outside the signed 12-bit ALU field.
    ImmTooLarge(i32),
    /// Conditional-branch target beyond the 13-bit displacement.
    TargetTooFar(u32),
}

fn xreg(rng: &mut FuzzRng) -> XReg {
    XReg::new(rng.below(32) as u8)
}
fn freg(rng: &mut FuzzRng) -> FReg {
    FReg::new(rng.below(32) as u8)
}
fn vreg(rng: &mut FuzzRng) -> VReg {
    VReg::new(rng.below(32) as u8)
}
/// Data-processing predicate (3-bit field everywhere it appears).
fn pred(rng: &mut FuzzRng) -> PReg {
    PReg::new(rng.below(8) as u8)
}
fn width(rng: &mut FuzzRng) -> ElemWidth {
    *rng.pick(&ElemWidth::all())
}
fn vtype(rng: &mut FuzzRng) -> VType {
    *rng.pick(&[VType::Int, VType::Fp])
}
fn dup_src(rng: &mut FuzzRng) -> DupSrc {
    if rng.bool() {
        DupSrc::X(xreg(rng))
    } else {
        DupSrc::F(freg(rng))
    }
}
fn imm12(rng: &mut FuzzRng) -> i32 {
    rng.range_i64(-2048, 2047) as i32
}
/// A conditional-branch target within the signed 13-bit window around `pc`.
fn near_target(rng: &mut FuzzRng, pc: u32, reach: i64) -> u32 {
    let lo = (i64::from(pc) - reach).max(0);
    let hi = i64::from(pc) + reach - 1;
    rng.range_i64(lo, hi) as u32
}

const ALU_OPS: [AluOp; 16] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Mulh,
    AluOp::Div,
    AluOp::Rem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Min,
    AluOp::Max,
];
const BR_CONDS: [BrCond; 6] = [
    BrCond::Eq,
    BrCond::Ne,
    BrCond::Lt,
    BrCond::Ge,
    BrCond::Ltu,
    BrCond::Geu,
];
const V_OPS: [VOp; 11] = [
    VOp::Add,
    VOp::Sub,
    VOp::Mul,
    VOp::Div,
    VOp::Min,
    VOp::Max,
    VOp::And,
    VOp::Or,
    VOp::Xor,
    VOp::Shl,
    VOp::Shr,
];

/// Draws one random instruction (shared with the assembler fuzzer, which
/// layers program-level round trips on top of the same distribution).
#[allow(clippy::too_many_lines)]
pub(crate) fn gen_inst(rng: &mut FuzzRng, pc: u32) -> Inst {
    let param = *rng.pick(&[Param::Offset, Param::Size, Param::Stride]);
    match rng.below(50) {
        0 => Inst::Alu {
            op: *rng.pick(&ALU_OPS),
            rd: xreg(rng),
            rs1: xreg(rng),
            rs2: xreg(rng),
        },
        1 => Inst::AluImm {
            op: *rng.pick(&ALU_OPS),
            rd: xreg(rng),
            rs1: xreg(rng),
            imm: imm12(rng),
        },
        2 => Inst::Lui {
            rd: xreg(rng),
            imm: rng.range_i64(-(1 << 19), (1 << 19) - 1) as i32,
        },
        3 => Inst::Ld {
            rd: xreg(rng),
            base: xreg(rng),
            off: imm12(rng),
            width: width(rng),
        },
        4 => Inst::St {
            src: xreg(rng),
            base: xreg(rng),
            off: imm12(rng),
            width: width(rng),
        },
        5 => Inst::Fld {
            fd: freg(rng),
            base: xreg(rng),
            off: imm12(rng),
            width: width(rng),
        },
        6 => Inst::Fst {
            src: freg(rng),
            base: xreg(rng),
            off: imm12(rng),
            width: width(rng),
        },
        7 => Inst::FAlu {
            op: *rng.pick(&[
                FpOp::Add,
                FpOp::Sub,
                FpOp::Mul,
                FpOp::Div,
                FpOp::Min,
                FpOp::Max,
            ]),
            width: width(rng),
            fd: freg(rng),
            fs1: freg(rng),
            fs2: freg(rng),
        },
        8 => Inst::FMac {
            width: width(rng),
            fd: freg(rng),
            fs1: freg(rng),
            fs2: freg(rng),
            fs3: freg(rng),
        },
        9 => Inst::FUn {
            op: *rng.pick(&[FpUnOp::Sqrt, FpUnOp::Abs, FpUnOp::Neg, FpUnOp::Mv]),
            width: width(rng),
            fd: freg(rng),
            fs: freg(rng),
        },
        10 => Inst::FMvXF {
            rd: xreg(rng),
            fs: freg(rng),
        },
        11 => Inst::FMvFX {
            fd: freg(rng),
            rs: xreg(rng),
        },
        12 => Inst::FCvtFX {
            width: width(rng),
            fd: freg(rng),
            rs: xreg(rng),
        },
        13 => Inst::FCvtXF {
            width: width(rng),
            rd: xreg(rng),
            fs: freg(rng),
        },
        14 => Inst::Branch {
            cond: *rng.pick(&BR_CONDS),
            rs1: xreg(rng),
            rs2: xreg(rng),
            target: near_target(rng, pc, 1 << 12),
        },
        15 => Inst::Jal {
            rd: xreg(rng),
            target: near_target(rng, pc, 1 << 20),
        },
        16 => Inst::Halt,
        17 => Inst::Nop,
        18 => Inst::SsStart {
            u: vreg(rng),
            dir: *rng.pick(&[Dir::Load, Dir::Store]),
            width: width(rng),
            base: xreg(rng),
            size: xreg(rng),
            stride: xreg(rng),
            done: rng.bool(),
        },
        19 => Inst::SsApp {
            u: vreg(rng),
            offset: xreg(rng),
            size: xreg(rng),
            stride: xreg(rng),
            end: rng.bool(),
        },
        20 => Inst::SsAppMod {
            u: vreg(rng),
            target: param,
            behaviour: *rng.pick(&[Behaviour::Add, Behaviour::Sub]),
            disp: xreg(rng),
            count: xreg(rng),
            end: rng.bool(),
        },
        21 => Inst::SsAppInd {
            u: vreg(rng),
            target: param,
            behaviour: *rng.pick(&[
                IndirectBehaviour::SetAdd,
                IndirectBehaviour::SetSub,
                IndirectBehaviour::SetValue,
            ]),
            origin: vreg(rng),
            end: rng.bool(),
        },
        22 => Inst::SsCtl {
            op: *rng.pick(&[StreamCtl::Suspend, StreamCtl::Resume, StreamCtl::Stop]),
            u: vreg(rng),
        },
        23 => Inst::SsCfgMem {
            u: vreg(rng),
            level: *rng.pick(&[MemLevel::L1, MemLevel::L2, MemLevel::Mem]),
        },
        24 => Inst::SsBranch {
            cond: match rng.below(4) {
                0 => StreamCond::NotEnd,
                1 => StreamCond::End,
                2 => StreamCond::DimNotEnd(rng.below(8) as u8),
                _ => StreamCond::DimEnd(rng.below(8) as u8),
            },
            u: vreg(rng),
            target: near_target(rng, pc, 1 << 12),
        },
        25 => Inst::SsGetVl {
            rd: xreg(rng),
            width: width(rng),
        },
        26 => Inst::SsSetVl {
            rd: xreg(rng),
            rs: xreg(rng),
            width: width(rng),
        },
        27 => Inst::VDup {
            vd: vreg(rng),
            src: dup_src(rng),
            width: width(rng),
            ty: vtype(rng),
        },
        28 => Inst::VMv {
            vd: vreg(rng),
            vs: vreg(rng),
        },
        29 => Inst::VUn {
            op: *rng.pick(&[VUnOp::Abs, VUnOp::Neg, VUnOp::Sqrt, VUnOp::Mv]),
            ty: vtype(rng),
            width: width(rng),
            vd: vreg(rng),
            vs: vreg(rng),
            pred: pred(rng),
        },
        30 => Inst::VArith {
            op: *rng.pick(&V_OPS),
            ty: vtype(rng),
            width: width(rng),
            vd: vreg(rng),
            vs1: vreg(rng),
            vs2: vreg(rng),
            pred: pred(rng),
        },
        31 => Inst::VArithVS {
            op: *rng.pick(&V_OPS),
            ty: vtype(rng),
            width: width(rng),
            vd: vreg(rng),
            vs1: vreg(rng),
            scalar: dup_src(rng),
            pred: pred(rng),
        },
        32 => Inst::VMac {
            ty: vtype(rng),
            width: width(rng),
            vd: vreg(rng),
            vs1: vreg(rng),
            vs2: vreg(rng),
            pred: pred(rng),
        },
        33 => Inst::VMacVS {
            ty: vtype(rng),
            width: width(rng),
            vd: vreg(rng),
            vs1: vreg(rng),
            scalar: dup_src(rng),
            pred: pred(rng),
        },
        34 => Inst::VRed {
            op: *rng.pick(&[HorizOp::Add, HorizOp::Max, HorizOp::Min]),
            ty: vtype(rng),
            width: width(rng),
            vd: vreg(rng),
            vs: vreg(rng),
            pred: pred(rng),
        },
        35 => Inst::VCmp {
            op: *rng.pick(&[
                VCmpOp::Eq,
                VCmpOp::Ne,
                VCmpOp::Lt,
                VCmpOp::Le,
                VCmpOp::Gt,
                VCmpOp::Ge,
            ]),
            ty: vtype(rng),
            width: width(rng),
            pd: pred(rng),
            vs1: vreg(rng),
            vs2: vreg(rng),
        },
        36 => {
            let op = *rng.pick(&[PredOp::And, PredOp::Or, PredOp::Mov, PredOp::Not]);
            // The unary forms print without ps2; the assembler reads it
            // back as p0, so only that form round-trips through text.
            let ps2 = if matches!(op, PredOp::Mov | PredOp::Not) {
                PReg::P0
            } else {
                pred(rng)
            };
            Inst::PredAlu {
                op,
                pd: pred(rng),
                ps1: pred(rng),
                ps2,
            }
        }
        37 => Inst::PredFromValid {
            pd: pred(rng),
            vs: vreg(rng),
        },
        38 => Inst::BrPred {
            cond: *rng.pick(&[PredCond::First, PredCond::Any, PredCond::None]),
            p: pred(rng),
            target: near_target(rng, pc, 1 << 12),
        },
        39 => Inst::VExtractF {
            fd: freg(rng),
            vs: vreg(rng),
            lane: rng.below(64) as u8,
            width: width(rng),
        },
        40 => Inst::VExtractX {
            rd: xreg(rng),
            vs: vreg(rng),
            lane: rng.below(64) as u8,
            width: width(rng),
        },
        41 => Inst::VLoad {
            vd: vreg(rng),
            base: xreg(rng),
            index: xreg(rng),
            width: width(rng),
            pred: pred(rng),
        },
        42 => Inst::VStore {
            vs: vreg(rng),
            base: xreg(rng),
            index: xreg(rng),
            width: width(rng),
            pred: pred(rng),
        },
        43 => Inst::VGather {
            vd: vreg(rng),
            base: xreg(rng),
            idx: vreg(rng),
            width: width(rng),
            pred: pred(rng),
        },
        44 => Inst::VScatter {
            vs: vreg(rng),
            base: xreg(rng),
            idx: vreg(rng),
            width: width(rng),
            pred: pred(rng),
        },
        45 => Inst::WhileLt {
            pd: pred(rng),
            rs1: xreg(rng),
            rs2: xreg(rng),
            width: width(rng),
        },
        46 => Inst::IncVl {
            rd: xreg(rng),
            width: width(rng),
        },
        47 => Inst::CntVl {
            rd: xreg(rng),
            width: width(rng),
        },
        48 => Inst::VLoadPost {
            vd: vreg(rng),
            base: xreg(rng),
            width: width(rng),
            pred: pred(rng),
        },
        _ => Inst::VStorePost {
            vs: vreg(rng),
            base: xreg(rng),
            width: width(rng),
            pred: pred(rng),
        },
    }
}

fn check_invalid(kind: InvalidEncode) -> Result<(), String> {
    let (got, want): (Result<u32, EncodeError>, &str) = match kind {
        InvalidEncode::DimTooLarge(k) => (
            encode(
                &Inst::SsBranch {
                    cond: StreamCond::DimEnd(k),
                    u: VReg::new(0),
                    target: 0,
                },
                0,
            ),
            "DimOutOfRange",
        ),
        InvalidEncode::LaneTooLarge(lane) => (
            encode(
                &Inst::VExtractX {
                    rd: XReg::ZERO,
                    vs: VReg::new(0),
                    lane,
                    width: ElemWidth::Word,
                },
                0,
            ),
            "LaneOutOfRange",
        ),
        InvalidEncode::PredTooLarge(p) => (
            encode(
                &Inst::VArith {
                    op: VOp::Add,
                    ty: VType::Fp,
                    width: ElemWidth::Word,
                    vd: VReg::new(0),
                    vs1: VReg::new(0),
                    vs2: VReg::new(0),
                    pred: PReg::new(p),
                },
                0,
            ),
            "PredOutOfRange",
        ),
        InvalidEncode::ImmTooLarge(imm) => (
            encode(
                &Inst::AluImm {
                    op: AluOp::Add,
                    rd: XReg::ZERO,
                    rs1: XReg::ZERO,
                    imm,
                },
                0,
            ),
            "ImmOutOfRange",
        ),
        InvalidEncode::TargetTooFar(target) => (
            encode(
                &Inst::Branch {
                    cond: BrCond::Eq,
                    rs1: XReg::ZERO,
                    rs2: XReg::ZERO,
                    target,
                },
                0,
            ),
            "TargetOutOfRange",
        ),
    };
    let matches_want = matches!(
        (&got, kind),
        (
            Err(EncodeError::DimOutOfRange { .. }),
            InvalidEncode::DimTooLarge(_)
        ) | (
            Err(EncodeError::LaneOutOfRange { .. }),
            InvalidEncode::LaneTooLarge(_)
        ) | (
            Err(EncodeError::PredOutOfRange { .. }),
            InvalidEncode::PredTooLarge(_)
        ) | (
            Err(EncodeError::ImmOutOfRange { .. }),
            InvalidEncode::ImmTooLarge(_)
        ) | (
            Err(EncodeError::TargetOutOfRange { .. }),
            InvalidEncode::TargetTooFar(_)
        )
    );
    if matches_want {
        Ok(())
    } else {
        Err(format!("{kind:?}: expected Err({want}), got {got:?}"))
    }
}

/// The ISA-codec fuzzer engine.
pub struct IsaEngine;

impl Engine for IsaEngine {
    type Case = IsaCase;

    fn name() -> &'static str {
        "isa"
    }

    fn generate(rng: &mut FuzzRng) -> IsaCase {
        let pc = rng.below(1024) as u32;
        let inst = gen_inst(rng, pc);
        let raw_words: Vec<u32> = (0..8).map(|_| rng.u64() as u32).collect();
        let invalid = rng.chance(1, 4).then(|| match rng.below(5) {
            0 => InvalidEncode::DimTooLarge(rng.range_u64(8, 31) as u8),
            1 => InvalidEncode::LaneTooLarge(rng.range_u64(64, 255) as u8),
            2 => InvalidEncode::PredTooLarge(rng.range_u64(8, 15) as u8),
            3 => InvalidEncode::ImmTooLarge(if rng.bool() {
                rng.range_i64(2048, 1 << 20) as i32
            } else {
                rng.range_i64(-(1 << 20), -2049) as i32
            }),
            _ => InvalidEncode::TargetTooFar(rng.range_u64(1 << 13, 1 << 20) as u32),
        });
        IsaCase {
            inst,
            pc,
            raw_words,
            invalid,
        }
    }

    fn check(case: &IsaCase) -> Result<(), String> {
        // 1. Binary round trip at `pc`.
        let word = encode(&case.inst, case.pc)
            .map_err(|e| format!("encode({}) failed: {e}", case.inst))?;
        let back = decode(word, case.pc)
            .map_err(|e| format!("decode({word:#010x}) of {} failed: {e}", case.inst))?;
        if back != case.inst {
            return Err(format!("binary roundtrip: {} decoded as {back}", case.inst));
        }
        let word2 = encode(&back, case.pc).map_err(|e| format!("re-encode failed: {e}"))?;
        if word2 != word {
            return Err(format!(
                "re-encode of {} gave {word2:#010x}, expected {word:#010x}",
                case.inst
            ));
        }

        // 2. Text round trip: Display → assemble one-line program.
        let text = format!("{}\n", case.inst);
        let prog = assemble("fuzz", &text)
            .map_err(|e| format!("assemble of {:?} failed: {e}", text.trim()))?;
        if prog.insts().len() != 1 || prog.insts()[0] != case.inst {
            return Err(format!(
                "text roundtrip: {:?} assembled as {:?}",
                text.trim(),
                prog.insts()
            ));
        }

        // 3. Decode robustness over random words: never panic; every
        //    decodable word must re-encode to a decodable fixpoint (unused
        //    high bits may differ, the semantics must not).
        for &raw in &case.raw_words {
            match decode(raw, case.pc) {
                Ok(inst) => {
                    let re = encode(&inst, case.pc).map_err(|e| {
                        format!("{raw:#010x} decoded to {inst} which fails to re-encode: {e}")
                    })?;
                    let again = decode(re, case.pc).map_err(|e| {
                        format!("re-encoded {re:#010x} of {inst} fails to decode: {e}")
                    })?;
                    if again != inst {
                        return Err(format!(
                            "decode fixpoint violation: {raw:#010x} → {inst} → {re:#010x} → \
                             {again}"
                        ));
                    }
                }
                Err(DecodeError::BadOpcode(_) | DecodeError::BadField { .. }) => {}
            }
        }

        // 4. Typed rejection of out-of-range constructions.
        if let Some(kind) = case.invalid {
            check_invalid(kind)?;
        }
        Ok(())
    }

    fn shrink(case: &IsaCase) -> Vec<IsaCase> {
        let mut out = Vec::new();
        if case.invalid.is_some() {
            let mut c = case.clone();
            c.invalid = None;
            out.push(c);
        }
        if !case.raw_words.is_empty() {
            // Try dropping the raw sweep entirely, then halving it.
            let mut c = case.clone();
            c.raw_words.clear();
            out.push(c);
            for i in 0..case.raw_words.len() {
                let mut c = case.clone();
                c.raw_words.remove(i);
                out.push(c);
            }
        }
        if case.pc != 0 {
            let mut c = case.clone();
            c.pc = 0;
            // Branch targets are PC-relative: moving the instruction to
            // pc 0 keeps a forward target encodable.
            out.push(c);
        }
        if case.inst != Inst::Nop {
            let mut c = case.clone();
            c.inst = Inst::Nop;
            out.push(c);
        }
        out
    }
}
