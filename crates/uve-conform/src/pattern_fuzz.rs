//! Differential fuzzing of the stream descriptor walker.
//!
//! Each case generates a random valid [`Pattern`] spec (1–8 dims, up to 7
//! static/indirect modifiers, every element width) and checks the
//! production iterative [`Walker`] against [`oracle`], a deliberately
//! naive recursive interpretation of the descriptor semantics (Sec. II of
//! the paper): nested loops innermost-first, modifiers applied once per
//! iteration of their binding dimension, indirect values read from the
//! origin stream and combined with the *original* static parameter.
//!
//! On top of the element sequence the case also cross-checks:
//! - end-flag chains (`EndFlags`) per element, including the stream bit;
//! - `Pattern::count` against the oracle length;
//! - `VectorWalker` chunk partitioning (valid bounds, no dimension-0
//!   crossing, chunk flags);
//! - `SavedWalker` capture/restore at a random element cut — mid-vector in
//!   general — resuming to an identical suffix;
//! - builder rejection of deliberately invalid descriptors
//!   ([`PatternError`] boundary cases).

use crate::rng::FuzzRng;
use crate::Engine;
use uve_stream::{
    Behaviour, ElemWidth, IndirectBehaviour, IndirectPacking, Param, Pattern, PatternError,
    SavedWalker, SliceMemory, StreamMemory, VectorWalker, Walker, MAX_DIMS, MAX_MODIFIERS,
};

/// Oracle element cap: patterns can legally describe streams far larger
/// than anything worth diffing exhaustively. Beyond the cap only the
/// prefix is compared and the length-dependent checks are skipped.
const CAP: usize = 1 << 13;

/// A static-modifier spec.
#[derive(Debug, Clone)]
pub struct StaticSpec {
    /// Parameter of the next-inner dimension it updates.
    pub target: Param,
    /// Add or subtract.
    pub behaviour: Behaviour,
    /// Displacement per application.
    pub disp: i64,
    /// Application budget.
    pub count: u64,
}

/// An indirect-modifier spec; the origin is a plain (modifier-free)
/// pattern spec, as nested indirection is architecturally forbidden.
#[derive(Debug, Clone)]
pub struct IndirectSpec {
    /// Parameter of the next-inner dimension it sets.
    pub target: Param,
    /// Combination rule with the original static value.
    pub behaviour: IndirectBehaviour,
    /// Origin stream (no modifiers).
    pub origin: PatternSpec,
}

/// One dimension plus the modifiers bound to it.
#[derive(Debug, Clone)]
pub struct DimSpec {
    /// Initial offset (elements).
    pub offset: i64,
    /// Initial size (iterations).
    pub size: u64,
    /// Initial stride (elements).
    pub stride: i64,
    /// Static modifiers, in declaration order.
    pub statics: Vec<StaticSpec>,
    /// Indirect modifiers, in declaration order.
    pub indirects: Vec<IndirectSpec>,
}

impl DimSpec {
    fn plain(offset: i64, size: u64, stride: i64) -> Self {
        Self {
            offset,
            size,
            stride,
            statics: Vec::new(),
            indirects: Vec::new(),
        }
    }
}

/// A buildable pattern description, index 0 innermost.
#[derive(Debug, Clone)]
pub struct PatternSpec {
    /// Base byte address.
    pub base: u64,
    /// Element width.
    pub width: ElemWidth,
    /// Dimensions, innermost first.
    pub dims: Vec<DimSpec>,
}

impl PatternSpec {
    /// Builds the production [`Pattern`].
    ///
    /// # Errors
    ///
    /// Propagates [`PatternError`] from the builder.
    pub fn build(&self) -> Result<Pattern, PatternError> {
        let mut b = Pattern::builder(self.base, self.width);
        for d in &self.dims {
            b = b.dim(d.offset, d.size, d.stride);
            for s in &d.statics {
                b = b.static_mod(s.target, s.behaviour, s.disp, s.count);
            }
            for i in &d.indirects {
                b = b.indirect_mod(i.target, i.behaviour, i.origin.build()?);
            }
        }
        b.build()
    }
}

/// Deliberately invalid construction, checked to produce the exact
/// [`PatternError`] boundary variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidBuild {
    /// `n > MAX_DIMS` dimensions.
    TooManyDims(usize),
    /// `n > MAX_MODIFIERS` static modifiers.
    TooManyModifiers(usize),
    /// A modifier on the single (innermost) dimension.
    ModifierOnInnermost,
    /// A base not aligned to the element width.
    Misaligned,
    /// No dimensions at all.
    NoDims,
    /// An indirect origin that is itself indirect.
    NestedIndirection,
}

/// One pattern-fuzzer case.
#[derive(Debug, Clone)]
pub struct PatternCase {
    /// The descriptor under test.
    pub spec: PatternSpec,
    /// Vector length in elements for the chunking checks.
    pub vl: usize,
    /// Raw selector for the save/restore cut (reduced mod stream length).
    pub cut_sel: u64,
    /// Backing values for indirect origins.
    pub mem: Vec<i64>,
    /// Optional invalid-build side check.
    pub invalid: Option<InvalidBuild>,
}

/// Oracle output: `(address, end-flag bits)` per element.
pub struct OracleOut {
    /// Elements in stream order.
    pub elems: Vec<(u64, u16)>,
    /// Whether generation stopped at [`CAP`].
    pub truncated: bool,
}

/// The naive recursive reference interpretation of a descriptor.
///
/// Works directly on the spec (not the built `Pattern`) with explicit
/// nested loops; shares nothing with the iterative walker except the
/// `StreamMemory` trait used to read indirection origins.
pub fn oracle<M: StreamMemory>(spec: &PatternSpec, mem: &M) -> OracleOut {
    struct St<'a> {
        spec: &'a PatternSpec,
        /// Working `(offset, size, stride)` per dim, updated by modifiers.
        wd: Vec<(i64, u64, i64)>,
        /// Remaining application budget per static modifier.
        budget: Vec<Vec<u64>>,
        /// Pre-walked origin values and a consumption cursor per indirect.
        origins: Vec<Vec<(Vec<i64>, usize)>>,
        idx: Vec<u64>,
        /// `(j, captured size)` of each open loop, indexed by dim.
        frames: Vec<(u64, u64)>,
        out: Vec<(u64, u16)>,
        truncated: bool,
    }

    impl St<'_> {
        fn apply_mods(&mut self, k: usize) {
            let d = &self.spec.dims[k];
            for (i, s) in d.statics.iter().enumerate() {
                if self.budget[k][i] == 0 {
                    continue;
                }
                self.budget[k][i] -= 1;
                let delta = match s.behaviour {
                    Behaviour::Add => s.disp,
                    Behaviour::Sub => -s.disp,
                };
                let t = &mut self.wd[k - 1];
                match s.target {
                    Param::Offset => t.0 = t.0.wrapping_add(delta),
                    Param::Size => t.1 = (t.1 as i64).wrapping_add(delta).max(0) as u64,
                    Param::Stride => t.2 = t.2.wrapping_add(delta),
                }
            }
            for (i, ind) in d.indirects.iter().enumerate() {
                let (values, pos) = &mut self.origins[k][i];
                let value = values.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                let orig = &self.spec.dims[k - 1];
                let original = match ind.target {
                    Param::Offset => orig.offset,
                    Param::Size => orig.size as i64,
                    Param::Stride => orig.stride,
                };
                let new = match ind.behaviour {
                    IndirectBehaviour::SetAdd => original.wrapping_add(value),
                    IndirectBehaviour::SetSub => original.wrapping_sub(value),
                    IndirectBehaviour::SetValue => value,
                };
                let t = &mut self.wd[k - 1];
                match ind.target {
                    Param::Offset => t.0 = new,
                    Param::Size => t.1 = new.max(0) as u64,
                    Param::Stride => t.2 = new,
                }
            }
        }

        fn addr(&self) -> u64 {
            let mut sum: i64 = 0;
            for (k, &(off, _, stride)) in self.wd.iter().enumerate() {
                sum = sum.wrapping_add(off.wrapping_add((self.idx[k] as i64).wrapping_mul(stride)));
            }
            self.spec
                .base
                .wrapping_add((sum as u64).wrapping_mul(self.spec.width.bytes() as u64))
        }

        /// Flag bits for the element just emitted: the consecutive chain
        /// of loops this element completes.
        fn flags(&self) -> u16 {
            let mut bits = 0u16;
            for (k, &(j, size)) in self.frames.iter().enumerate() {
                if j + 1 == size {
                    bits |= 1 << k;
                } else {
                    break;
                }
            }
            bits
        }

        fn run(&mut self, k: usize) {
            let size = self.wd[k].1; // captured: fixed for this run
            for j in 0..size {
                if self.truncated {
                    return;
                }
                self.idx[k] = j;
                self.frames[k] = (j, size);
                if k == 0 {
                    if self.out.len() == CAP {
                        self.truncated = true;
                        return;
                    }
                    self.out.push((self.addr(), self.flags()));
                } else {
                    self.apply_mods(k);
                    self.run(k - 1);
                }
            }
        }
    }

    // Origin streams carry no modifiers, so their value sequence can be
    // fully precomputed with plain loops.
    fn origin_values<M: StreamMemory>(o: &PatternSpec, mem: &M) -> Vec<i64> {
        let mut addrs: Vec<u64> = vec![];
        let mut idx = vec![0u64; o.dims.len()];
        'all: loop {
            let mut sum: i64 = 0;
            for (k, d) in o.dims.iter().enumerate() {
                if d.size == 0 {
                    break 'all;
                }
                sum = sum.wrapping_add(
                    d.offset
                        .wrapping_add((idx[k] as i64).wrapping_mul(d.stride)),
                );
            }
            addrs.push(
                o.base
                    .wrapping_add((sum as u64).wrapping_mul(o.width.bytes() as u64)),
            );
            if addrs.len() >= CAP {
                break;
            }
            let mut k = 0;
            loop {
                if k == o.dims.len() {
                    break 'all;
                }
                idx[k] += 1;
                if idx[k] < o.dims[k].size {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
        addrs.into_iter().map(|a| mem.load(a, o.width)).collect()
    }

    let n = spec.dims.len();
    let mut st = St {
        spec,
        wd: spec
            .dims
            .iter()
            .map(|d| (d.offset, d.size, d.stride))
            .collect(),
        budget: spec
            .dims
            .iter()
            .map(|d| d.statics.iter().map(|s| s.count).collect())
            .collect(),
        origins: spec
            .dims
            .iter()
            .map(|d| {
                d.indirects
                    .iter()
                    .map(|i| (origin_values(&i.origin, mem), 0))
                    .collect()
            })
            .collect(),
        idx: vec![0; n],
        frames: vec![(0, 0); n],
        out: Vec::new(),
        truncated: false,
    };
    st.run(n - 1);
    let mut out = OracleOut {
        elems: st.out,
        truncated: st.truncated,
    };
    if !out.truncated {
        if let Some(last) = out.elems.last_mut() {
            last.1 |= 1 << 15; // stream-end bit on the final element
        }
    }
    out
}

fn gen_origin(rng: &mut FuzzRng) -> PatternSpec {
    let width = *rng.pick(&ElemWidth::all());
    let ndims = rng.range_usize(1, 2);
    let mut dims = Vec::new();
    for _ in 0..ndims {
        dims.push(DimSpec::plain(
            rng.range_i64(0, 4),
            rng.range_u64(0, 8),
            rng.range_i64(0, 3),
        ));
    }
    PatternSpec {
        // Small aligned base so origin reads land inside the value table.
        base: rng.below(8) * 8,
        width,
        dims,
    }
}

fn gen_spec(rng: &mut FuzzRng) -> PatternSpec {
    let width = *rng.pick(&ElemWidth::all());
    // Weight dimension count toward small, cover up to MAX_DIMS.
    let ndims = match rng.below(10) {
        0..=3 => rng.range_usize(1, 2),
        4..=7 => rng.range_usize(3, 4),
        _ => rng.range_usize(5, MAX_DIMS),
    };
    // Deep nests get small extents so most cases stay under the cap.
    let max_size = if ndims <= 3 { 6 } else { 3 };
    let mut dims: Vec<DimSpec> = (0..ndims)
        .map(|_| {
            DimSpec::plain(
                rng.range_i64(-8, 8),
                rng.range_u64(0, max_size),
                rng.range_i64(-8, 8),
            )
        })
        .collect();
    // The whole stream is empty unless the outermost size is nonzero most
    // of the time.
    if dims[ndims - 1].size == 0 && rng.chance(7, 8) {
        dims[ndims - 1].size = rng.range_u64(1, max_size);
    }
    // 0..=MAX_MODIFIERS modifiers spread over non-innermost dims.
    if ndims > 1 {
        let nmods = rng.below(MAX_MODIFIERS as u64 + 1);
        for _ in 0..nmods {
            let k = rng.range_usize(1, ndims - 1);
            let target = *rng.pick(&[Param::Offset, Param::Size, Param::Stride]);
            if rng.chance(2, 3) {
                dims[k].statics.push(StaticSpec {
                    target,
                    behaviour: *rng.pick(&[Behaviour::Add, Behaviour::Sub]),
                    disp: rng.range_i64(0, 3),
                    count: rng.range_u64(0, 6),
                });
            } else {
                dims[k].indirects.push(IndirectSpec {
                    target,
                    behaviour: *rng.pick(&[
                        IndirectBehaviour::SetAdd,
                        IndirectBehaviour::SetSub,
                        IndirectBehaviour::SetValue,
                    ]),
                    origin: gen_origin(rng),
                });
            }
        }
    }
    PatternSpec {
        base: rng.below(512) * 8,
        width,
        dims,
    }
}

fn gen_invalid(rng: &mut FuzzRng) -> InvalidBuild {
    match rng.below(6) {
        0 => InvalidBuild::TooManyDims(rng.range_usize(MAX_DIMS + 1, MAX_DIMS + 4)),
        1 => InvalidBuild::TooManyModifiers(rng.range_usize(MAX_MODIFIERS + 1, MAX_MODIFIERS + 3)),
        2 => InvalidBuild::ModifierOnInnermost,
        3 => InvalidBuild::Misaligned,
        4 => InvalidBuild::NoDims,
        _ => InvalidBuild::NestedIndirection,
    }
}

fn check_invalid(kind: InvalidBuild) -> Result<(), String> {
    let got = match kind {
        InvalidBuild::TooManyDims(n) => {
            let mut b = Pattern::builder(0, ElemWidth::Word);
            for _ in 0..n {
                b = b.dim(0, 1, 1);
            }
            b.build().err()
        }
        InvalidBuild::TooManyModifiers(n) => {
            let mut b = Pattern::builder(0, ElemWidth::Word)
                .dim(0, 1, 1)
                .dim(0, 1, 1);
            for _ in 0..n {
                b = b.static_mod(Param::Offset, Behaviour::Add, 1, 1);
            }
            b.build().err()
        }
        InvalidBuild::ModifierOnInnermost => Pattern::builder(0, ElemWidth::Word)
            .dim(0, 1, 1)
            .static_mod(Param::Offset, Behaviour::Add, 1, 1)
            .build()
            .err(),
        InvalidBuild::Misaligned => Pattern::builder(2, ElemWidth::Word)
            .dim(0, 1, 1)
            .build()
            .err(),
        InvalidBuild::NoDims => Pattern::builder(0, ElemWidth::Word).build().err(),
        InvalidBuild::NestedIndirection => {
            let inner = Pattern::linear(0, ElemWidth::Word, 4).unwrap();
            let origin = Pattern::builder(0, ElemWidth::Word)
                .dim(0, 1, 0)
                .indirect_outer(Param::Offset, IndirectBehaviour::SetAdd, inner, 4)
                .build()
                .unwrap();
            Pattern::builder(0, ElemWidth::Word)
                .dim(0, 1, 0)
                .indirect_outer(Param::Offset, IndirectBehaviour::SetAdd, origin, 4)
                .build()
                .err()
        }
    };
    let ok = matches!(
        (kind, &got),
        (InvalidBuild::TooManyDims(n), Some(PatternError::TooManyDims(m))) if n == *m
    ) || matches!(
        (kind, &got),
        (InvalidBuild::TooManyModifiers(n), Some(PatternError::TooManyModifiers(m))) if n == *m
    ) || matches!(
        (kind, &got),
        (
            InvalidBuild::ModifierOnInnermost,
            Some(PatternError::ModifierOnInnermost)
        ) | (
            InvalidBuild::Misaligned,
            Some(PatternError::Misaligned { .. })
        ) | (InvalidBuild::NoDims, Some(PatternError::NoDims))
            | (
                InvalidBuild::NestedIndirection,
                Some(PatternError::NestedIndirection)
            )
    );
    if ok {
        Ok(())
    } else {
        Err(format!("invalid build {kind:?} produced {got:?}"))
    }
}

/// The pattern-fuzzer engine.
pub struct PatternEngine;

impl Engine for PatternEngine {
    type Case = PatternCase;

    fn name() -> &'static str {
        "pattern"
    }

    fn generate(rng: &mut FuzzRng) -> PatternCase {
        let spec = gen_spec(rng);
        let mem: Vec<i64> = (0..64).map(|_| rng.range_i64(-8, 8)).collect();
        PatternCase {
            spec,
            vl: rng.range_usize(1, 16),
            cut_sel: rng.u64(),
            mem,
            invalid: rng.chance(1, 4).then(|| gen_invalid(rng)),
        }
    }

    fn check(case: &PatternCase) -> Result<(), String> {
        if let Some(kind) = case.invalid {
            check_invalid(kind)?;
        }
        let mem = SliceMemory::new(case.mem.clone());
        let pat = case
            .spec
            .build()
            .map_err(|e| format!("valid spec rejected: {e}"))?;
        let expect = oracle(&case.spec, &mem);

        // 1. Element sequence + end flags, walker vs oracle.
        let mut w = Walker::new(&pat);
        for (i, &(addr, bits)) in expect.elems.iter().enumerate() {
            let e = w
                .next_elem(&mem)
                .ok_or_else(|| format!("walker exhausted at element {i}, oracle has more"))?;
            if e.addr != addr || e.ends.bits() != bits {
                return Err(format!(
                    "element {i}: walker (addr {:#x}, ends {:#06x}) vs oracle (addr {addr:#x}, \
                     ends {bits:#06x})",
                    e.addr,
                    e.ends.bits()
                ));
            }
        }
        if !expect.truncated {
            if let Some(e) = w.next_elem(&mem) {
                return Err(format!(
                    "walker continues past oracle end with addr {:#x}",
                    e.addr
                ));
            }
            // 2. `count` agrees with the full walk.
            let n = pat.count(&mem);
            if n != expect.elems.len() as u64 {
                return Err(format!(
                    "count() = {n}, oracle length = {}",
                    expect.elems.len()
                ));
            }
        }

        // 3. Vector chunk partitioning, in both indirect-chunking modes.
        // Diffing each mode's flattened chunks element-by-element against
        // the *same* oracle also proves the cross-mode invariant: packing
        // neither reorders, drops, nor duplicates elements — it only
        // re-draws the chunk boundaries.
        let mut covered = [0usize; 2];
        for (mode_idx, packing) in [IndirectPacking::Packed, IndirectPacking::Unpacked]
            .into_iter()
            .enumerate()
        {
            let mut vw = VectorWalker::with_packing(&pat, case.vl, packing);
            let packs = vw.packs();
            let mut pos = 0usize;
            while let Some(c) = vw.next_chunk(&mem) {
                if c.valid < 1 || c.valid > case.vl || c.addrs.len() != c.valid {
                    return Err(format!(
                        "[{packing:?}] chunk at {pos}: valid {} outside 1..={} (addrs {})",
                        c.valid,
                        case.vl,
                        c.addrs.len()
                    ));
                }
                if pos + c.valid > expect.elems.len() {
                    if expect.truncated {
                        pos += c.valid;
                        break; // compared the capped prefix
                    }
                    return Err(format!(
                        "[{packing:?}] chunks overrun the walk: {} > {}",
                        pos + c.valid,
                        expect.elems.len()
                    ));
                }
                for (off, &a) in c.addrs.iter().enumerate() {
                    let (want, bits) = expect.elems[pos + off];
                    if a != want {
                        return Err(format!(
                            "[{packing:?}] chunk element {}: addr {a:#x} vs oracle {want:#x}",
                            pos + off
                        ));
                    }
                    // A chunk may only keep filling past an element whose
                    // boundary state does not close it: any dimension-0 end
                    // under the strict rule, outer-dimension/stream ends
                    // when this stream packs.
                    let closing = if packs { bits & !1 != 0 } else { bits & 1 != 0 };
                    if off + 1 < c.valid && closing {
                        return Err(format!(
                            "[{packing:?}] chunk crosses a closing boundary at element {} \
                             (ends {bits:#06x})",
                            pos + off
                        ));
                    }
                }
                let last_bits = expect.elems[pos + c.valid - 1].1;
                if c.ends.bits() != last_bits {
                    return Err(format!(
                        "[{packing:?}] chunk ends {:#06x} vs oracle flags {last_bits:#06x} \
                         at element {}",
                        c.ends.bits(),
                        pos + c.valid - 1
                    ));
                }
                pos += c.valid;
            }
            if !expect.truncated && pos != expect.elems.len() {
                return Err(format!(
                    "[{packing:?}] chunks cover {pos} of {} elements",
                    expect.elems.len()
                ));
            }
            covered[mode_idx] = pos;
        }
        if !expect.truncated && covered[0] != covered[1] {
            return Err(format!(
                "packing modes cover different element totals: packed {} vs unpacked {}",
                covered[0], covered[1]
            ));
        }

        // 4. Save/restore at a random (generally mid-vector) cut.
        let limit = expect.elems.len().min(CAP);
        let cut = (case.cut_sel % (limit as u64 + 1)) as usize;
        let mut w1 = Walker::new(&pat);
        for _ in 0..cut {
            w1.next_elem(&mem);
        }
        let saved = SavedWalker::capture(&w1);
        let mut w2 = Walker::new(&pat);
        saved.restore(&mut w2, &mem);
        for (i, &(addr, bits)) in expect.elems[cut..].iter().enumerate() {
            let e = w2.next_elem(&mem).ok_or_else(|| {
                format!("restored walker exhausted at suffix element {i} (cut {cut})")
            })?;
            if e.addr != addr || e.ends.bits() != bits {
                return Err(format!(
                    "restored suffix element {i} (cut {cut}): (addr {:#x}, ends {:#06x}) vs \
                     (addr {addr:#x}, ends {bits:#06x})",
                    e.addr,
                    e.ends.bits()
                ));
            }
        }
        if !expect.truncated && w2.next_elem(&mem).is_some() {
            return Err(format!("restored walker continues past end (cut {cut})"));
        }
        Ok(())
    }

    fn shrink(case: &PatternCase) -> Vec<PatternCase> {
        let mut out = Vec::new();
        // Drop the invalid side check first: most failures are in the
        // differential part.
        if case.invalid.is_some() {
            let mut c = case.clone();
            c.invalid = None;
            out.push(c);
        }
        let s = &case.spec;
        // Drop whole dimensions (with their modifiers).
        for k in (0..s.dims.len()).rev() {
            if s.dims.len() > 1 {
                let mut c = case.clone();
                c.spec.dims.remove(k);
                out.push(c);
            }
        }
        // Drop individual modifiers.
        for k in 0..s.dims.len() {
            for i in 0..s.dims[k].statics.len() {
                let mut c = case.clone();
                c.spec.dims[k].statics.remove(i);
                out.push(c);
            }
            for i in 0..s.dims[k].indirects.len() {
                let mut c = case.clone();
                c.spec.dims[k].indirects.remove(i);
                out.push(c);
            }
        }
        // Shrink magnitudes toward 0/1.
        for k in 0..s.dims.len() {
            let d = &s.dims[k];
            if d.size > 1 {
                let mut c = case.clone();
                c.spec.dims[k].size = d.size / 2;
                out.push(c);
            }
            if d.offset != 0 {
                let mut c = case.clone();
                c.spec.dims[k].offset = d.offset / 2;
                out.push(c);
            }
            if d.stride != 0 && d.stride != 1 {
                let mut c = case.clone();
                c.spec.dims[k].stride = if d.stride.abs() == 1 { 1 } else { d.stride / 2 };
                out.push(c);
            }
        }
        if case.spec.base != 0 {
            let mut c = case.clone();
            c.spec.base = 0;
            out.push(c);
        }
        if case.vl > 1 {
            let mut c = case.clone();
            c.vl = case.vl / 2;
            out.push(c);
        }
        if case.cut_sel != 0 {
            let mut c = case.clone();
            c.cut_sel = case.cut_sel / 2;
            out.push(c);
        }
        out
    }
}
