//! Conformance fuzzing of the distributed sweep service's pure core: the
//! wire protocol and the merge assembly.
//!
//! The sweep service's determinism contract ("merged output bit-identical
//! to a serial run, whatever the interleaving") rests on two pure layers
//! this engine hammers without any sockets or emulation:
//!
//! 1. **Codec fixpoint** — a random [`Msg`] (random specs, points, rows,
//!    stats, hostile strings) must survive encode→decode→re-encode with
//!    the decoded value equal to the original and the re-encoded bytes
//!    byte-identical.
//! 2. **Decode totality** — every strict prefix of a valid frame must
//!    decode to an error (never panic, never succeed), and frames with a
//!    randomly flipped byte or outright random bytes must decode to
//!    *something* (`Ok` or `Err`) without panicking or tripping the
//!    oversized-allocation guards.
//! 3. **Merge determinism** — a random small grid is planned through
//!    [`Assembly`], synthetic rows are offered once in submission order
//!    and once in a seed-shuffled order, and the merged outputs (and
//!    their [`rows_digest`]) must be identical, with every
//!    duplicate-key slot filled by the single shared job.
//! 4. **Cache-file totality** — random row sets must round-trip through
//!    the durable cache's WAL/snapshot image codec
//!    ([`uve_sweep::wal`]) bit-identically, and hostile images —
//!    truncations, bit flips, random garbage — must load partially or
//!    report a typed error, never panic and never invent rows that were
//!    not written.

use crate::rng::FuzzRng;
use crate::Engine;
use uve_core::{ExecMode, IndirectPacking};
use uve_isa::MemLevel;
use uve_kernels::Flavor;
use uve_sweep::messages::Reader;
use uve_sweep::wal::{decode_image, encode_image, SNAP_MAGIC, WAL_MAGIC};
use uve_sweep::{catalog, rows_digest, Assembly, Msg, PointRow, PointSpec, SweepSpec, SweepStats};

/// One fuzz case: a message seed (the message is re-derived in `check` so
/// the case stays tiny and shrinkable), a corruption-probe budget, an
/// optional merge-determinism grid, and an optional cache-image sub-case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCase {
    /// Seed deriving the random message under test.
    pub msg_seed: u64,
    /// Corrupt-frame probes (bit flips + random garbage frames).
    pub probes: u32,
    /// Merge-determinism sub-case (`None` skips it).
    pub merge: Option<MergeCase>,
    /// Cache-image round-trip/corruption sub-case (`None` skips it).
    pub cache: Option<CacheCase>,
}

/// A random cache image: row count, hostile probes, derivation seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCase {
    /// Rows in the image (0..=4).
    pub rows: u8,
    /// Truncation/bit-flip/garbage probes per magic.
    pub probes: u8,
    /// Seed deriving rows, cut points, and flip positions.
    pub seed: u64,
}

/// A small random grid plus the shuffle seed for the out-of-order merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeCase {
    /// Catalog kernels to include (1..=3, first may be duplicated to
    /// exercise key-collapsed slots).
    pub kernels: u8,
    /// Duplicate the first kernel, creating two slots per job key.
    pub dup_kernel: bool,
    /// Flavors to include (1..=2).
    pub flavors: u8,
    /// Fault seeds to include (1..=2).
    pub fault_seeds: u8,
    /// Seed of the completion-order shuffle.
    pub shuffle_seed: u64,
}

// --- random message construction ---------------------------------------

fn rand_string(rng: &mut FuzzRng) -> String {
    let len = rng.range_usize(0, 12);
    (0..len)
        .map(|_| {
            // Mostly ASCII, sometimes multi-byte, to stress UTF-8 framing.
            if rng.chance(1, 8) {
                *rng.pick(&['λ', 'Ω', '→', '愛', '\u{1F980}'])
            } else {
                (b' ' + (rng.below(95) as u8)) as char
            }
        })
        .collect()
}

fn rand_flavor(rng: &mut FuzzRng) -> Flavor {
    *rng.pick(&[Flavor::Uve, Flavor::Sve, Flavor::Neon, Flavor::Scalar])
}

fn rand_level(rng: &mut FuzzRng) -> MemLevel {
    *rng.pick(&[MemLevel::L1, MemLevel::L2, MemLevel::Mem])
}

fn rand_packing(rng: &mut FuzzRng) -> IndirectPacking {
    *rng.pick(&[IndirectPacking::Packed, IndirectPacking::Unpacked])
}

fn rand_exec(rng: &mut FuzzRng) -> ExecMode {
    *rng.pick(&[ExecMode::Interpret, ExecMode::Translated])
}

fn rand_point(rng: &mut FuzzRng) -> PointSpec {
    PointSpec {
        small: rng.bool(),
        kernel: rand_string(rng),
        flavor: rand_flavor(rng),
        level: rand_level(rng),
        packing: rand_packing(rng),
        exec: rand_exec(rng),
        fault_seed: rng.u64(),
        cores: rng.u64() as u32,
        vec_prf: rng.u64() as u32,
        fifo_depth: rng.u64() as u32,
    }
}

fn rand_row(rng: &mut FuzzRng) -> PointRow {
    PointRow {
        point: rand_point(rng),
        cycles: rng.u64(),
        committed: rng.u64(),
        rename_blocked: rng.u64(),
        // Arbitrary bit patterns, including NaN payloads, must survive the
        // wire — utilization travels as raw IEEE-754 bits.
        bus_util_bits: rng.u64(),
        digest: rng.u64(),
    }
}

fn rand_spec(rng: &mut FuzzRng) -> SweepSpec {
    let mut spec = SweepSpec {
        small: rng.bool(),
        ..SweepSpec::default()
    };
    for _ in 0..rng.range_usize(0, 3) {
        spec.kernels.push(rand_string(rng));
    }
    for _ in 0..rng.range_usize(0, 3) {
        spec.flavors.push(rand_flavor(rng));
    }
    for _ in 0..rng.range_usize(0, 2) {
        spec.levels.push(rand_level(rng));
    }
    for _ in 0..rng.range_usize(0, 2) {
        spec.packings.push(rand_packing(rng));
    }
    for _ in 0..rng.range_usize(0, 2) {
        spec.execs.push(rand_exec(rng));
    }
    for _ in 0..rng.range_usize(0, 3) {
        spec.fault_seeds.push(rng.u64());
    }
    for _ in 0..rng.range_usize(0, 3) {
        spec.cores.push(rng.u64() as u32);
    }
    for _ in 0..rng.range_usize(0, 2) {
        spec.vec_prfs.push(rng.u64() as u32);
    }
    for _ in 0..rng.range_usize(0, 2) {
        spec.fifo_depths.push(rng.u64() as u32);
    }
    spec
}

fn rand_stats(rng: &mut FuzzRng) -> SweepStats {
    SweepStats {
        total: rng.u64() as u32,
        cached: rng.u64() as u32,
        joined: rng.u64() as u32,
        executed: rng.u64() as u32,
        retries: rng.u64() as u32,
        worker_deaths: rng.u64() as u32,
        emulations: rng.u64(),
    }
}

/// A random protocol message covering every variant.
pub fn random_msg(rng: &mut FuzzRng) -> Msg {
    match rng.below(14) {
        0 => Msg::ClientHello {
            version: rng.u64() as u32,
        },
        1 => Msg::WorkerHello {
            version: rng.u64() as u32,
            name: rand_string(rng),
        },
        2 => Msg::SweepRequest {
            spec: rand_spec(rng),
        },
        3 => Msg::Progress {
            done: rng.u64() as u32,
            total: rng.u64() as u32,
            cached: rng.u64() as u32,
        },
        4 => {
            let rows = (0..rng.range_usize(0, 4)).map(|_| rand_row(rng)).collect();
            Msg::SweepDone {
                rows,
                stats: rand_stats(rng),
            }
        }
        5 => Msg::Error {
            message: rand_string(rng),
        },
        6 => Msg::RunJob {
            job: rng.u64(),
            point: rand_point(rng),
        },
        7 => Msg::JobOk {
            job: rng.u64(),
            row: rand_row(rng),
            emulations: rng.u64() as u32,
        },
        8 => Msg::JobErr {
            job: rng.u64(),
            message: rand_string(rng),
        },
        9 => Msg::Ping,
        10 => Msg::Pong,
        11 => Msg::Shutdown,
        12 => Msg::Unavailable {
            message: rand_string(rng),
        },
        _ => Msg::Heartbeat { job: rng.u64() },
    }
}

// --- checks ------------------------------------------------------------

fn check_fixpoint(msg: &Msg) -> Result<Vec<u8>, String> {
    let bytes = msg.encode();
    let decoded = Msg::decode(&bytes).map_err(|e| format!("decode of valid frame: {e}"))?;
    if decoded != *msg {
        return Err(format!(
            "decode round trip changed the message:\n  sent {msg:?}\n  got  {decoded:?}"
        ));
    }
    let re = decoded.encode();
    if re != bytes {
        return Err(format!(
            "re-encode is not a fixpoint: {} bytes vs {} bytes",
            bytes.len(),
            re.len()
        ));
    }
    Ok(bytes)
}

fn check_hostile_decodes(bytes: &[u8], probes: u32, rng: &mut FuzzRng) -> Result<(), String> {
    // Every strict prefix must fail (all fields are mandatory, so a
    // truncated frame can never parse), and must fail gracefully.
    for len in 0..bytes.len() {
        if Msg::decode(&bytes[..len]).is_ok() {
            return Err(format!(
                "strict prefix of length {len}/{} decoded successfully",
                bytes.len()
            ));
        }
    }
    for _ in 0..probes {
        // Bit flip somewhere in the frame: must return, never panic.
        if !bytes.is_empty() {
            let mut bad = bytes.to_vec();
            let at = rng.below(bad.len() as u64) as usize;
            bad[at] ^= 1 << rng.below(8);
            let _ = Msg::decode(&bad);
        }
        // Random garbage frame of modest length: same bar.
        let garbage: Vec<u8> = (0..rng.range_usize(0, 64))
            .map(|_| rng.u64() as u8)
            .collect();
        let _ = Msg::decode(&garbage);
    }
    // Field-level reader totality on the same hostile bytes.
    let mut r = Reader::new(bytes);
    while r.u8().is_ok() {}
    Ok(())
}

fn merge_spec(mc: &MergeCase) -> SweepSpec {
    let cat = catalog(true);
    let mut kernels: Vec<String> = cat
        .iter()
        .take(mc.kernels.clamp(1, 3) as usize)
        .map(|b| b.name().to_string())
        .collect();
    if mc.dup_kernel {
        kernels.push(kernels[0].clone());
    }
    SweepSpec {
        small: true,
        kernels,
        flavors: [Flavor::Uve, Flavor::Scalar][..mc.flavors.clamp(1, 2) as usize].to_vec(),
        fault_seeds: (0..u64::from(mc.fault_seeds.clamp(1, 2))).collect(),
        ..SweepSpec::default()
    }
}

fn check_merge(mc: &MergeCase) -> Result<(), String> {
    let spec = merge_spec(mc);
    let mut in_order = Assembly::new(&spec).map_err(|e| format!("plan: {e}"))?;
    let mut shuffled = Assembly::new(&spec).map_err(|e| format!("plan: {e}"))?;

    // Synthetic rows, one per *distinct* job key (exactly what the
    // coordinator's cache guarantees: one row per key, however many slots
    // want it).
    let mut rng = FuzzRng::new(mc.shuffle_seed);
    let mut jobs: Vec<(u64, PointRow)> = Vec::new();
    for (i, &key) in in_order.keys().iter().enumerate() {
        if jobs.iter().any(|(k, _)| *k == key) {
            continue;
        }
        let mut row = rand_row(&mut rng);
        row.point = in_order.points()[i].clone();
        jobs.push((key, row));
    }

    for (key, row) in &jobs {
        in_order.offer(*key, row);
    }
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below(i as u64 + 1) as usize);
    }
    for &i in &order {
        let (key, row) = &jobs[i];
        let filled = shuffled.offer(*key, row);
        if filled == 0 {
            return Err(format!("offer of job {key:016x} filled no slots"));
        }
    }

    if !in_order.is_complete() || !shuffled.is_complete() {
        return Err(format!(
            "assembly incomplete: {}/{} in order, {}/{} shuffled",
            in_order.filled(),
            in_order.total(),
            shuffled.filled(),
            shuffled.total()
        ));
    }
    let a = in_order.finish().map_err(|i| format!("slot {i} empty"))?;
    let b = shuffled.finish().map_err(|i| format!("slot {i} empty"))?;
    if a != b {
        let at = a.iter().zip(&b).position(|(x, y)| x != y);
        return Err(format!(
            "merge depends on completion order (first divergence at slot {at:?})"
        ));
    }
    if rows_digest(&a) != rows_digest(&b) {
        return Err("rows_digest differs between completion orders".to_string());
    }
    Ok(())
}

fn check_cache(cc: &CacheCase) -> Result<(), String> {
    let mut rng = FuzzRng::new(cc.seed);
    let rows: Vec<(u64, PointRow)> = (0..cc.rows.min(4))
        .map(|_| (rng.u64(), rand_row(&mut rng)))
        .collect();
    for magic in [WAL_MAGIC, SNAP_MAGIC] {
        let image = encode_image(&rows, magic);
        let (back, report) = decode_image(&image, magic);
        if back != rows {
            return Err(format!(
                "cache image round trip changed rows ({} in, {} out)",
                rows.len(),
                back.len()
            ));
        }
        if !report.is_clean() {
            return Err(format!("clean image loaded dirty: {report:?}"));
        }
        if encode_image(&back, magic) != image {
            return Err("cache image re-encode is not a fixpoint".to_string());
        }
        for _ in 0..cc.probes {
            // Truncation: the load must be a clean prefix of what was
            // written, and valid_len must not overrun the cut.
            let cut = rng.below(image.len() as u64 + 1) as usize;
            let (part, rep) = decode_image(&image[..cut], magic);
            if part.len() > rows.len() || part != rows[..part.len()] {
                return Err(format!("truncation at {cut} is not a prefix load"));
            }
            if rep.valid_len > cut {
                return Err(format!(
                    "valid_len {} overruns the {cut}-byte image",
                    rep.valid_len
                ));
            }
            // Bit flip: must load without panicking, and every surviving
            // row must be one that was actually written (the checksum is
            // what makes this hold).
            let mut bad = image.clone();
            let at = rng.below(bad.len() as u64) as usize;
            bad[at] ^= 1 << rng.below(8);
            let (got, _) = decode_image(&bad, magic);
            for pair in &got {
                if !rows.contains(pair) {
                    return Err(format!(
                        "bit flip at byte {at} invented row for key {:016x}",
                        pair.0
                    ));
                }
            }
            // Random garbage: totality only.
            let garbage: Vec<u8> = (0..rng.range_usize(0, 96))
                .map(|_| rng.u64() as u8)
                .collect();
            let _ = decode_image(&garbage, magic);
        }
    }
    Ok(())
}

/// The sweep-protocol conformance engine.
pub struct SweepEngine;

impl Engine for SweepEngine {
    type Case = SweepCase;

    fn name() -> &'static str {
        "sweep"
    }

    fn generate(rng: &mut FuzzRng) -> SweepCase {
        SweepCase {
            msg_seed: rng.u64(),
            probes: rng.range_u64(1, 16) as u32,
            merge: rng.chance(1, 2).then(|| MergeCase {
                kernels: rng.range_u64(1, 3) as u8,
                dup_kernel: rng.chance(1, 4),
                flavors: rng.range_u64(1, 2) as u8,
                fault_seeds: rng.range_u64(1, 2) as u8,
                shuffle_seed: rng.u64(),
            }),
            cache: rng.chance(1, 2).then(|| CacheCase {
                rows: rng.range_u64(0, 4) as u8,
                probes: rng.range_u64(1, 8) as u8,
                seed: rng.u64(),
            }),
        }
    }

    fn check(case: &SweepCase) -> Result<(), String> {
        let mut rng = FuzzRng::new(case.msg_seed);
        let msg = random_msg(&mut rng);
        let bytes = check_fixpoint(&msg)?;
        check_hostile_decodes(&bytes, case.probes, &mut rng)?;
        if let Some(mc) = &case.merge {
            check_merge(mc)?;
        }
        if let Some(cc) = &case.cache {
            check_cache(cc)?;
        }
        Ok(())
    }

    fn shrink(case: &SweepCase) -> Vec<SweepCase> {
        let mut out = Vec::new();
        if case.merge.is_some() {
            out.push(SweepCase {
                merge: None,
                ..*case
            });
        }
        if let Some(mc) = case.merge {
            for smaller in [
                MergeCase { kernels: 1, ..mc },
                MergeCase {
                    dup_kernel: false,
                    ..mc
                },
                MergeCase { flavors: 1, ..mc },
                MergeCase {
                    fault_seeds: 1,
                    ..mc
                },
            ] {
                if smaller != mc {
                    out.push(SweepCase {
                        merge: Some(smaller),
                        ..*case
                    });
                }
            }
        }
        if case.cache.is_some() {
            out.push(SweepCase {
                cache: None,
                ..*case
            });
        }
        if let Some(cc) = case.cache {
            for smaller in [
                CacheCase {
                    rows: cc.rows.saturating_sub(1),
                    ..cc
                },
                CacheCase {
                    probes: (cc.probes / 2).max(1),
                    ..cc
                },
            ] {
                if smaller != cc {
                    out.push(SweepCase {
                        cache: Some(smaller),
                        ..*case
                    });
                }
            }
        }
        if case.probes > 1 {
            out.push(SweepCase {
                probes: case.probes / 2,
                ..*case
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_cases_pass() {
        for case in 0..50 {
            crate::replay_one("sweep", 1, case).unwrap();
        }
    }

    #[test]
    fn shrink_drops_merge_then_axes() {
        let case = SweepCase {
            msg_seed: 3,
            probes: 8,
            merge: Some(MergeCase {
                kernels: 3,
                dup_kernel: true,
                flavors: 2,
                fault_seeds: 2,
                shuffle_seed: 5,
            }),
            cache: Some(CacheCase {
                rows: 3,
                probes: 4,
                seed: 11,
            }),
        };
        let cands = SweepEngine::shrink(&case);
        assert!(cands[0].merge.is_none());
        assert!(cands.iter().any(|c| c.probes == 4));
        assert!(cands
            .iter()
            .any(|c| c.merge.is_some_and(|m| m.kernels == 1)));
        assert!(cands.iter().any(|c| c.cache.is_none()));
        assert!(cands.iter().any(|c| c.cache.is_some_and(|cc| cc.rows == 2)));
    }

    #[test]
    fn cache_check_passes_for_a_seed_spread() {
        for seed in 0..16 {
            check_cache(&CacheCase {
                rows: (seed % 5) as u8,
                probes: 6,
                seed,
            })
            .unwrap();
        }
    }

    #[test]
    fn merge_check_catches_order_dependence_by_construction() {
        // A healthy assembly passes for a spread of shuffle seeds.
        for seed in 0..8 {
            check_merge(&MergeCase {
                kernels: 2,
                dup_kernel: true,
                flavors: 2,
                fault_seeds: 2,
                shuffle_seed: seed,
            })
            .unwrap();
        }
    }
}
