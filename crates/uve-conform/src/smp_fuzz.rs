//! Conformance fuzzing of the multicore subsystem (`uve-smp`).
//!
//! Each case picks a small kernel instance, a flavor, a core count, and
//! scheduling parameters, then drives all three multicore entry points and
//! checks their invariants:
//!
//! 1. **sharded lockstep** ([`uve_smp::run_lockstep`] over
//!    [`uve_smp::shard_trace`]d copies): the single-writer MOESI invariant
//!    holds under the periodic full scan, every core's cycle accounting
//!    conserves, every core commits exactly the trace's instruction count,
//!    and a second identical run is bit-identical (cycles and snoop
//!    counters);
//! 2. **preemptive multiprogramming** ([`uve_smp::run_multiprogrammed`]
//!    over [`uve_smp::relocate_trace`]d copies, one more program than
//!    cores): same coherence/conservation/commit checks per program, plus
//!    a liveness bound — every scheduler tick advances at least one
//!    program's local clock, so the global tick count can never exceed the
//!    summed program cycles — and run-twice determinism;
//! 3. **architectural invisibility** ([`uve_smp::run_round_robin`]): the
//!    functional round-robin scheduler, preempting at a small instruction
//!    quantum with a full stream-context save/restore at every switch,
//!    must finish with the register digest and memory hash of an
//!    uninterrupted solo run.
//!
//! Kernel sizes are capped far below the figure sizes: coherence and
//! scheduling bugs show up at tiny footprints (the shared write prefix is
//! only a few lines), and each case runs the timing model `2·cores + 2`
//! times.

use crate::kernel_diff::KernelCase;
use crate::rng::FuzzRng;
use crate::Engine;
use uve_core::{EmuConfig, Emulator, Trace};
use uve_cpu::CpuConfig;
use uve_kernels::Flavor;
use uve_mem::Memory;
use uve_smp::{relocate_trace, run_lockstep, run_multiprogrammed, shard_trace, Job, MpConfig};

/// One multicore-conformance case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmpCase {
    /// The kernel instance to run on every core.
    pub kernel: KernelCase,
    /// Code flavour (scalar exercises the L1 MOESI paths, UVE the L2
    /// owner-probe paths).
    pub flavor: Flavor,
    /// Physical cores.
    pub cores: usize,
    /// Written lines left shared between the sharded copies.
    pub shared: usize,
    /// Timing-scheduler quantum in cycles.
    pub quantum: u64,
    /// Functional-scheduler quantum in committed instructions.
    pub steps: u64,
}

fn gen_kernel(rng: &mut FuzzRng) -> KernelCase {
    match rng.below(8) {
        0 => KernelCase::Memcpy(rng.range_usize(1, 96)),
        1 => KernelCase::Stream(rng.range_usize(1, 96)),
        2 => KernelCase::Saxpy(rng.range_usize(1, 96)),
        3 => KernelCase::Mvt(rng.range_usize(1, 16)),
        4 => KernelCase::Trisolv(rng.range_usize(2, 16)),
        5 => KernelCase::Jacobi1d(rng.range_usize(3, 64), 1),
        6 => KernelCase::MamrIndirect(rng.range_usize(1, 16)),
        _ => KernelCase::Knn(rng.range_usize(1, 32), rng.range_usize(1, 4)),
    }
}

/// The multicore-conformance engine.
pub struct SmpEngine;

impl Engine for SmpEngine {
    type Case = SmpCase;

    fn name() -> &'static str {
        "smp"
    }

    fn generate(rng: &mut FuzzRng) -> SmpCase {
        SmpCase {
            kernel: gen_kernel(rng),
            flavor: *rng.pick(&[Flavor::Uve, Flavor::Sve, Flavor::Neon, Flavor::Scalar]),
            cores: *rng.pick(&[2usize, 4]),
            shared: rng.range_usize(0, 24),
            quantum: rng.range_u64(100, 800),
            steps: rng.range_u64(5, 60),
        }
    }

    fn check(case: &SmpCase) -> Result<(), String> {
        let bench = case.kernel.bench();
        let run = uve_kernels::run(bench.as_ref(), case.flavor)
            .map_err(|e| format!("kernel emulation failed: {e:?}"))?;
        let trace = &run.result.trace;
        let solo_digest = run.emulator.arch_digest();
        let solo_hash = run.emulator.mem.content_hash();
        let cpu = CpuConfig::default();
        let ctx = |what: &str| format!("{:?}/{}/{}c {what}", case.kernel, case.flavor, case.cores);

        // 1. Sharded lockstep: coherence, conservation, commit count,
        // run-twice determinism.
        let traces: Vec<Trace> = (0..case.cores)
            .map(|c| shard_trace(trace, c, case.shared))
            .collect();
        let lockstep = || {
            run_lockstep(&cpu, &traces, 32)
                .map_err(|v| format!("{}: {v}", ctx("single-writer violation")))
        };
        let first = lockstep()?;
        for (core, s) in first.per_core.iter().enumerate() {
            s.account
                .check(s.cycles)
                .map_err(|e| format!("{} core {core}: {e}", ctx("lockstep accounting")))?;
            if s.committed != trace.committed() {
                return Err(format!(
                    "{} core {core}: committed {} of {}",
                    ctx("lockstep commit"),
                    s.committed,
                    trace.committed()
                ));
            }
        }
        let again = lockstep()?;
        let cycles =
            |r: &uve_smp::SmpRun| -> Vec<u64> { r.per_core.iter().map(|s| s.cycles).collect() };
        if cycles(&first) != cycles(&again) || first.snoop != again.snoop {
            return Err(format!(
                "{}: {:?}/{:?} then {:?}/{:?}",
                ctx("lockstep not deterministic"),
                cycles(&first),
                first.snoop,
                cycles(&again),
                again.snoop
            ));
        }

        // 2. Multiprogramming: one more program than cores forces time
        // slicing on at least one core.
        let programs: Vec<Trace> = (0..=case.cores)
            .map(|slot| relocate_trace(trace, slot))
            .collect();
        let refs: Vec<&Trace> = programs.iter().collect();
        let cfg = MpConfig {
            cores: case.cores,
            quantum: case.quantum,
            restore_penalty: 50,
            check_every: 64,
        };
        let mp = || {
            run_multiprogrammed(&cpu, &refs, &cfg)
                .map_err(|v| format!("{}: {v}", ctx("mp single-writer violation")))
        };
        let m1 = mp()?;
        let total: u64 = m1.programs.iter().map(|p| p.stats.cycles).sum();
        if m1.scheduler_ticks > total {
            return Err(format!(
                "{}: {} ticks for {} summed program cycles — some tick advanced nobody",
                ctx("mp liveness"),
                m1.scheduler_ticks,
                total
            ));
        }
        for (i, p) in m1.programs.iter().enumerate() {
            p.stats
                .account
                .check(p.stats.cycles)
                .map_err(|e| format!("{} program {i}: {e}", ctx("mp accounting")))?;
            if p.stats.committed != trace.committed() {
                return Err(format!(
                    "{} program {i}: committed {} of {}",
                    ctx("mp commit"),
                    p.stats.committed,
                    trace.committed()
                ));
            }
        }
        let m2 = mp()?;
        let prog_cycles = |r: &uve_smp::MpRun| -> Vec<u64> {
            r.programs.iter().map(|p| p.stats.cycles).collect()
        };
        if m1.scheduler_ticks != m2.scheduler_ticks || prog_cycles(&m1) != prog_cycles(&m2) {
            return Err(format!(
                "{}: {} ticks {:?} then {} ticks {:?}",
                ctx("mp not deterministic"),
                m1.scheduler_ticks,
                prog_cycles(&m1),
                m2.scheduler_ticks,
                prog_cycles(&m2)
            ));
        }

        // 3. The functional scheduler must be architecturally invisible.
        let cfg = EmuConfig {
            vlen_bytes: case.flavor.vlen_bytes(),
            ..EmuConfig::default()
        };
        let mut emu = Emulator::new(cfg, Memory::new());
        bench.setup(&mut emu);
        let jobs = vec![Job {
            name: format!("{:?}", case.kernel),
            program: bench.program(case.flavor),
            emu,
        }];
        let outcomes = uve_smp::run_round_robin(jobs, case.cores, case.steps)
            .map_err(|e| format!("{}: {e}", ctx("round robin")))?;
        let out = &outcomes[0];
        if out.arch_digest != solo_digest {
            return Err(format!(
                "{}: register state differs from the solo run",
                ctx("context switching")
            ));
        }
        if out.mem_hash != solo_hash {
            return Err(format!(
                "{}: memory image differs from the solo run",
                ctx("context switching")
            ));
        }
        Ok(())
    }

    fn shrink(case: &SmpCase) -> Vec<SmpCase> {
        let mut out: Vec<SmpCase> = case
            .kernel
            .smaller()
            .into_iter()
            .map(|kernel| SmpCase { kernel, ..*case })
            .collect();
        if case.cores > 2 {
            out.push(SmpCase { cores: 2, ..*case });
        }
        if case.shared > 0 {
            out.push(SmpCase { shared: 0, ..*case });
        }
        if case.flavor != Flavor::Scalar {
            out.push(SmpCase {
                flavor: Flavor::Scalar,
                ..*case
            });
        }
        if case.quantum > 100 {
            out.push(SmpCase {
                quantum: 100,
                ..*case
            });
        }
        if case.steps > 5 {
            out.push(SmpCase { steps: 5, ..*case });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_few_cases_pass() {
        for case in 0..6 {
            let mut rng = FuzzRng::for_case(11, SmpEngine::name(), case);
            let c = SmpEngine::generate(&mut rng);
            SmpEngine::check(&c).unwrap_or_else(|e| panic!("case {case} ({c:?}): {e}"));
        }
    }

    #[test]
    fn shrink_simplifies_along_every_axis() {
        let case = SmpCase {
            kernel: KernelCase::Saxpy(64),
            flavor: Flavor::Uve,
            cores: 4,
            shared: 8,
            quantum: 500,
            steps: 40,
        };
        let cands = SmpEngine::shrink(&case);
        assert!(cands.iter().any(|c| c.cores == 2));
        assert!(cands.iter().any(|c| c.shared == 0));
        assert!(cands.iter().any(|c| c.flavor == Flavor::Scalar));
        assert!(cands.iter().any(|c| c.quantum == 100));
        assert!(cands.iter().any(|c| c.steps == 5));
    }
}
