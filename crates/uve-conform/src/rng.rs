//! Deterministic case-level randomness on top of the workspace's own
//! [`SplitMix64`] generator — no registry dependency, no global state.
//!
//! Every fuzz case owns an independent generator derived purely from
//! `(master seed, engine name, case index)`, so cases can be generated in
//! any order, on any number of worker threads, and replayed individually
//! (`uve-conform` prints `(seed, case)` pairs, the corpus stores them).

pub use uve_kernels::common::SplitMix64;

/// Fuzz-oriented convenience wrapper around [`SplitMix64`].
#[derive(Debug, Clone)]
pub struct FuzzRng(SplitMix64);

impl FuzzRng {
    /// A generator seeded directly.
    pub fn new(seed: u64) -> Self {
        Self(SplitMix64::new(seed))
    }

    /// The generator of case `case` of `engine` under `master` — the one
    /// derivation used by the CLI, the corpus replayer, and the ported
    /// property tests.
    pub fn for_case(master: u64, engine: &str, case: u64) -> Self {
        let mut s = SplitMix64::new(master).next_u64();
        for &b in engine.as_bytes() {
            s = SplitMix64::new(s ^ u64::from(b)).next_u64();
        }
        s = SplitMix64::new(s ^ case).next_u64();
        Self(SplitMix64::new(s))
    }

    /// Next raw 64-bit output.
    pub fn u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform value in `0..bound` (`bound` must be positive).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.0.below(bound)
    }

    /// Uniform value in `lo..=hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform value in `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo.wrapping_add(self.below(lo.abs_diff(hi) + 1) as i64)
    }

    /// Uniform value in `lo..=hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.0.next_u64() & 1 == 1
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of `xs` (must be non-empty).
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        self.0.range_f32(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_derivation_is_stable_and_engine_separated() {
        let a = FuzzRng::for_case(7, "pattern", 0).u64();
        let b = FuzzRng::for_case(7, "pattern", 0).u64();
        assert_eq!(a, b, "same (seed, engine, case) must replay identically");
        assert_ne!(a, FuzzRng::for_case(7, "isa", 0).u64());
        assert_ne!(a, FuzzRng::for_case(7, "pattern", 1).u64());
        assert_ne!(a, FuzzRng::for_case(8, "pattern", 0).u64());
    }

    #[test]
    fn ranges_are_inclusive() {
        let mut r = FuzzRng::new(1);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..400 {
            let v = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            saw_lo |= v == -2;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
    }
}
