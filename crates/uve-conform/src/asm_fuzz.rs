//! Differential fuzzing of the assembler front end.
//!
//! Each case builds a random constructible program — instructions drawn
//! from the same generator as the ISA codec fuzzer, with branch targets
//! clamped in range and random labels (including trailing labels past the
//! last instruction) — and checks:
//!
//! - program-level text round trip: `disassemble_program → assemble`
//!   reproduces the program *exactly* (instructions, name, and label map),
//!   and the round-tripped program encodes to the same words and
//!   fingerprint;
//! - unit composition: splitting the text at a line boundary into an entry
//!   unit ending in `.include tail` plus a `tail` unit assembles to the
//!   identical program;
//! - hostile-input totality: a mutated or garbage text must either
//!   assemble (mutations can be benign) or return a typed [`AsmError`]
//!   with a plausible span — and must *never* panic. Accepted mutants must
//!   themselves survive the disassemble→assemble *text* fixpoint (encoding
//!   is not required: a mutant's absolute branch targets can be out of the
//!   displacement field's reach).
//!
//! The hostile generator seeds its mutations with the token soup that
//! surfaced the assembler's first corpus entries (`)8(x2` address operands
//! and `]u2[` lane syntax once reached `unwrap`s inside the operand
//! parsers).

use crate::isa_fuzz::gen_inst;
use crate::rng::FuzzRng;
use crate::Engine;
use std::panic::{catch_unwind, AssertUnwindSafe};
use uve_core::program_fingerprint;
use uve_isa::{assemble, assemble_units, disassemble_program, encode_program, Inst, Program};

/// One assembler-fuzzer case.
#[derive(Debug, Clone)]
pub struct AsmCase {
    /// The random (valid) program: instructions with in-range targets.
    pub insts: Vec<Inst>,
    /// Label definitions as `(index, name)`; indices may equal
    /// `insts.len()` (trailing label).
    pub labels: Vec<(u32, String)>,
    /// Whether to also check the `.include`-split unit round trip.
    pub split_include: bool,
    /// Hostile text for the totality check, if any.
    pub hostile: Option<String>,
}

/// Tokens that historically stressed the operand parsers (`)8(x2` and
/// `]u2[` are the shapes behind the first two `asm` corpus entries).
const HOSTILE_TOKENS: &[&str] = &[
    ")8(x2",
    "]u2[",
    "0(",
    "[",
    "u2[99",
    "so.a.mac.w.fp",
    "so.a.mac.w.fp u4, u0",
    ".include entry",
    ".include",
    ".const",
    ".const X",
    ".const X X",
    "ld.w x1, (x2)8",
    "so.v.extr.f.w f2, ]u2[",
    "li x99, 1",
    "p9",
    "f77",
    "u42",
    "x-1",
    "0x",
    "halt halt",
    "beq x1, x2",
    "ss.ld.q u0, x1, x2, x3",
    "fmadd.w",
    ",,,",
    "::",
];

/// Clamps every branch-family target into `0..len` so the program both
/// builds and encodes at any pc.
fn clamp_targets(insts: &mut [Inst]) {
    let max = (insts.len() as u32).saturating_sub(1);
    for inst in insts.iter_mut() {
        match inst {
            Inst::Branch { target, .. }
            | Inst::Jal { target, .. }
            | Inst::SsBranch { target, .. }
            | Inst::BrPred { target, .. } => *target = (*target).min(max),
            _ => {}
        }
    }
}

/// Builds the [`Program`] a case describes.
fn build(case: &AsmCase) -> Result<Program, String> {
    let mut b = uve_isa::ProgramBuilder::new("asmfuzz");
    let mut labels = case.labels.clone();
    labels.sort();
    let mut next = labels.into_iter().peekable();
    for (pc, inst) in case.insts.iter().enumerate() {
        while next.peek().is_some_and(|(i, _)| *i as usize <= pc) {
            b.label(next.next().unwrap().1);
        }
        b.push(*inst);
    }
    for (_, l) in next {
        b.label(l);
    }
    b.build().map_err(|e| format!("builder rejected case: {e}"))
}

fn roundtrip(program: &Program) -> Result<(), String> {
    let text = disassemble_program(program);
    let back =
        assemble(program.name(), &text).map_err(|e| format!("reassembly failed: {e}\n{text}"))?;
    if &back != program {
        return Err(format!(
            "disassemble→assemble fixpoint violation:\n{text}\n got {back:?}\nwant {program:?}"
        ));
    }
    let words = encode_program(program).map_err(|e| format!("encode failed: {e:?}"))?;
    let words2 =
        encode_program(&back).map_err(|e| format!("encode of reassembly failed: {e:?}"))?;
    if words != words2 {
        return Err("reassembled program encodes to different words".to_string());
    }
    if program_fingerprint(program) != program_fingerprint(&back) {
        return Err("reassembled program has a different fingerprint".to_string());
    }
    Ok(())
}

/// Re-assembles `text` split at a line boundary into `entry` + `.include
/// tail`, which must yield the identical program.
fn split_roundtrip(program: &Program) -> Result<(), String> {
    let text = disassemble_program(program);
    let lines: Vec<&str> = text.lines().collect();
    let cut = lines.len() / 2;
    let entry = format!("{}\n.include tail\n", lines[..cut].join("\n"));
    let tail = format!("{}\n", lines[cut..].join("\n"));
    let back = assemble_units(program.name(), &[("entry", &entry), ("tail", &tail)])
        .map_err(|e| format!("split reassembly failed: {e}\nentry:\n{entry}\ntail:\n{tail}"))?;
    if &back != program {
        return Err(format!(
            "split `.include` fixpoint violation:\nentry:\n{entry}\ntail:\n{tail}"
        ));
    }
    Ok(())
}

/// The hostile text must never panic the assembler; whatever it returns
/// must be total and self-consistent.
fn hostile_total(text: &str) -> Result<(), String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| assemble("hostile", text)));
    match outcome {
        Err(_) => Err(format!("assembler panicked on hostile input:\n{text}")),
        Ok(Err(e)) => {
            let lines = text.lines().count().max(1);
            if e.span.line > lines {
                return Err(format!(
                    "error span line {} past end of {lines}-line input: {e}\n{text}",
                    e.span.line
                ));
            }
            // Rendering the diagnostic must itself be total.
            let _ = e.to_string();
            Ok(())
        }
        // Mutations can be benign; an accepted program must still satisfy
        // the *text* fixpoint. (Encoding is deliberately not required
        // here: absolute branch targets are context-dependent, so a
        // mutant can legitimately assemble to a program whose
        // displacement no longer fits the branch field.)
        Ok(Ok(p)) => {
            let text = disassemble_program(&p);
            match assemble("hostile", &text) {
                Ok(back) if back == p => Ok(()),
                Ok(_) => Err(format!(
                    "accepted hostile input, but its disassembly reassembles differently:\n{text}"
                )),
                Err(e) => Err(format!(
                    "accepted hostile input, but its disassembly no longer assembles: {e}\n{text}"
                )),
            }
        }
    }
}

fn gen_hostile(rng: &mut FuzzRng, base: &str) -> String {
    let mut text = if rng.chance(1, 4) {
        // Pure token soup.
        let n = rng.range_usize(1, 6);
        let mut t = String::new();
        for _ in 0..n {
            t.push_str(HOSTILE_TOKENS[rng.below(HOSTILE_TOKENS.len() as u64) as usize]);
            t.push(if rng.bool() { '\n' } else { ' ' });
        }
        t
    } else {
        base.to_string()
    };
    for _ in 0..rng.range_usize(1, 3) {
        let len = text.chars().count();
        match rng.below(5) {
            0 => {
                // Insert a hostile token at a random char position.
                let at = rng.range_usize(0, len);
                let byte = text.char_indices().nth(at).map_or(text.len(), |(i, _)| i);
                text.insert_str(
                    byte,
                    HOSTILE_TOKENS[rng.below(HOSTILE_TOKENS.len() as u64) as usize],
                );
            }
            1 if len > 0 => {
                // Delete a random char.
                let at = rng.range_usize(0, len - 1);
                let byte = text.char_indices().nth(at).map(|(i, _)| i).unwrap();
                text.remove(byte);
            }
            2 if len > 0 => {
                // Replace a random char with hostile punctuation.
                let at = rng.range_usize(0, len - 1);
                let byte = text.char_indices().nth(at).map(|(i, _)| i).unwrap();
                let c = *rng.pick(b"()[],:.xu9");
                text.remove(byte);
                text.insert(byte, c as char);
            }
            3 if len > 1 => {
                // Truncate mid-text.
                let at = rng.range_usize(1, len - 1);
                let byte = text.char_indices().nth(at).map(|(i, _)| i).unwrap();
                text.truncate(byte);
            }
            _ => {
                text.push('\n');
                text.push_str(HOSTILE_TOKENS[rng.below(HOSTILE_TOKENS.len() as u64) as usize]);
            }
        }
    }
    text
}

/// The assembler-front-end fuzzer engine.
pub struct AsmEngine;

impl Engine for AsmEngine {
    type Case = AsmCase;

    fn name() -> &'static str {
        "asm"
    }

    fn generate(rng: &mut FuzzRng) -> AsmCase {
        let n = rng.range_usize(1, 12);
        let mut insts: Vec<Inst> = (0..n).map(|pc| gen_inst(rng, pc as u32)).collect();
        clamp_targets(&mut insts);
        let mut labels = Vec::new();
        for i in 0..rng.below(4) {
            // Distinct names; indices may collide or trail the program.
            labels.push((rng.below(n as u64 + 1) as u32, format!("l{i}")));
        }
        let split_include = n >= 2 && rng.bool();
        let hostile = rng.chance(2, 3).then(|| {
            let base = build(&AsmCase {
                insts: insts.clone(),
                labels: labels.clone(),
                split_include: false,
                hostile: None,
            })
            .map(|p| disassemble_program(&p))
            .unwrap_or_default();
            gen_hostile(rng, &base)
        });
        AsmCase {
            insts,
            labels,
            split_include,
            hostile,
        }
    }

    fn check(case: &AsmCase) -> Result<(), String> {
        let program = build(case)?;
        roundtrip(&program)?;
        if case.split_include {
            split_roundtrip(&program)?;
        }
        if let Some(h) = &case.hostile {
            hostile_total(h)?;
        }
        Ok(())
    }

    fn shrink(case: &AsmCase) -> Vec<AsmCase> {
        let mut out = Vec::new();
        if case.hostile.is_some() {
            let mut c = case.clone();
            c.hostile = None;
            out.push(c);
        }
        if let Some(h) = &case.hostile {
            // Halve the hostile text from either end.
            let mid = h.len() / 2;
            if mid > 0 && h.is_char_boundary(mid) {
                for half in [&h[..mid], &h[mid..]] {
                    let mut c = case.clone();
                    c.hostile = Some(half.to_string());
                    out.push(c);
                }
            }
        }
        if case.split_include {
            let mut c = case.clone();
            c.split_include = false;
            out.push(c);
        }
        if !case.labels.is_empty() {
            let mut c = case.clone();
            c.labels.clear();
            out.push(c);
        }
        if case.insts.len() > 1 {
            let mut c = case.clone();
            c.insts.truncate(case.insts.len() / 2);
            clamp_targets(&mut c.insts);
            c.labels.retain(|(i, _)| *i as usize <= c.insts.len());
            out.push(c);
            for i in 0..case.insts.len() {
                let mut c = case.clone();
                c.insts.remove(i);
                clamp_targets(&mut c.insts);
                c.labels.retain(|(j, _)| *j as usize <= c.insts.len());
                out.push(c);
            }
        }
        for (i, inst) in case.insts.iter().enumerate() {
            if *inst != Inst::Nop {
                let mut c = case.clone();
                c.insts[i] = Inst::Nop;
                out.push(c);
            }
        }
        out
    }
}
