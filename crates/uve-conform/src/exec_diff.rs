//! Interpreter-differential fuzzing of the translated execution mode.
//!
//! The basic-block translation cache ([`uve_core::ExecMode::Translated`])
//! promises *bit-identical* behaviour to the decode-dispatch interpreter —
//! the acceptance bar for every consumer from the conformance sweeps to
//! `uve-smp` scheduling. Each case picks a random kernel instance, flavor
//! and vector length, then diffs the two execution modes against each
//! other:
//!
//! 1. **Traced full run** — the complete dynamic [`Trace`] (every op,
//!    every stream chunk), the architectural digest, the memory content
//!    hash and the per-stream element totals must match; a run that fails
//!    must fail with the same [`EmuError`](uve_core::EmuError) rendering.
//! 2. **Untraced full run** — the fast path the throughput bench and the
//!    sweeps use (`record_trace: false`) re-checked separately, since it
//!    dispatches through a different (straight-line) executor.
//! 3. **Sliced translated resume** — when the case carries a slice budget,
//!    the translated run is re-executed through budgeted
//!    [`resume`](uve_core::Emulator::resume) slices (the `uve-smp`
//!    preemption primitive) and must land in the same final state.
//! 4. **Faulted run** — when the case carries a fault plan, both modes run
//!    under the same [`StreamFaultPlan`] and must recover identically,
//!    trap-for-trap (`stream_faults` is part of the trace diff).

use crate::kernel_diff::{self, KernelCase};
use crate::rng::FuzzRng;
use crate::Engine;
use uve_core::{EmuConfig, Emulator, ExecMode, RunCursor, StreamFaultPlan, Trace};
use uve_kernels::{Benchmark, Flavor};
use uve_mem::Memory;

/// One differential case: a kernel instance and the execution conditions
/// both modes are run under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecCase {
    /// Kernel and problem size.
    pub kernel: KernelCase,
    /// Code flavor to emulate.
    pub flavor: Flavor,
    /// Vector length in bytes (16, 32 or 64).
    pub vlen_bytes: usize,
    /// Budget for the sliced-resume re-run (`None` skips it).
    pub slice: Option<u64>,
    /// `(seed, rate)` of a [`StreamFaultPlan`] applied to both modes
    /// (`None` skips the faulted run).
    pub fault: Option<(u64, u64)>,
}

/// Final state of one emulation, with the trace when recorded. An erroring
/// run is represented by the `Err` rendering, so "both modes fail the same
/// way" counts as equal behaviour. (`Trace` does not implement
/// `PartialEq`; [`diff`] compares its fields directly.)
#[derive(Debug, Clone)]
struct Outcome {
    committed: u64,
    arch_digest: u64,
    mem_hash: u64,
    faults_taken: u64,
    trace: Option<Trace>,
}

fn fresh_emulator(case: &ExecCase, exec: ExecMode, traced: bool) -> Emulator {
    let cfg = EmuConfig {
        vlen_bytes: case.vlen_bytes,
        record_trace: traced,
        exec,
        ..EmuConfig::default()
    };
    let mut emu = Emulator::new(cfg, Memory::new());
    if let Some((seed, rate)) = case.fault {
        emu.set_fault_plan(Some(StreamFaultPlan::new(seed, rate)));
    }
    emu
}

/// Runs the case to completion under `exec`, optionally in budgeted
/// resume slices, and returns the final state (or the error rendering).
fn run_one(
    case: &ExecCase,
    bench: &dyn Benchmark,
    exec: ExecMode,
    traced: bool,
    slice: Option<u64>,
) -> Result<Outcome, String> {
    let mut emu = fresh_emulator(case, exec, traced);
    bench.setup(&mut emu);
    let program = bench.program(case.flavor);
    let mut cursor = RunCursor::new();
    let run = loop {
        match emu.resume(&program, &mut cursor, slice) {
            Ok(true) => break Ok(cursor.into_result()),
            Ok(false) => {}
            Err(e) => break Err(format!("{e}")),
        }
    };
    let result = run?;
    Ok(Outcome {
        committed: result.committed,
        arch_digest: emu.arch_digest(),
        mem_hash: emu.mem.content_hash(),
        faults_taken: result
            .trace
            .ops
            .iter()
            .map(|op| u64::from(op.stream_faults))
            .sum(),
        trace: traced.then_some(result.trace),
    })
}

/// Diffs two outcomes, naming the execution condition in the message.
fn diff(
    what: &str,
    interp: &Result<Outcome, String>,
    trans: &Result<Outcome, String>,
) -> Result<(), String> {
    match (interp, trans) {
        (Err(a), Err(b)) => {
            if a == b {
                Ok(())
            } else {
                Err(format!(
                    "{what}: interpreter error {a:?} vs translated error {b:?}"
                ))
            }
        }
        (Ok(_), Err(b)) => Err(format!(
            "{what}: translated errored ({b}) where the interpreter succeeded"
        )),
        (Err(a), Ok(_)) => Err(format!(
            "{what}: interpreter errored ({a}) where translated succeeded"
        )),
        (Ok(a), Ok(b)) => {
            if a.committed != b.committed {
                return Err(format!(
                    "{what}: committed {} (interpreter) vs {} (translated)",
                    a.committed, b.committed
                ));
            }
            if a.faults_taken != b.faults_taken {
                return Err(format!(
                    "{what}: stream faults taken {} vs {}",
                    a.faults_taken, b.faults_taken
                ));
            }
            if let (Some(ta), Some(tb)) = (&a.trace, &b.trace) {
                if let Some(i) = ta.ops.iter().zip(&tb.ops).position(|(x, y)| x != y) {
                    return Err(format!(
                        "{what}: trace diverges at dynamic op {i}: {:?} vs {:?}",
                        ta.ops[i], tb.ops[i]
                    ));
                }
                if ta.ops.len() != tb.ops.len() {
                    return Err(format!(
                        "{what}: trace length {} vs {}",
                        ta.ops.len(),
                        tb.ops.len()
                    ));
                }
                let ea: Vec<_> = ta.streams.iter().map(|s| (s.u, s.elements())).collect();
                let eb: Vec<_> = tb.streams.iter().map(|s| (s.u, s.elements())).collect();
                if ea != eb {
                    return Err(format!(
                        "{what}: per-stream element totals {ea:?} vs {eb:?}"
                    ));
                }
                if ta.streams != tb.streams {
                    return Err(format!("{what}: stream side tables differ"));
                }
            }
            if a.arch_digest != b.arch_digest {
                return Err(format!(
                    "{what}: arch_digest 0x{:016x} vs 0x{:016x}",
                    a.arch_digest, b.arch_digest
                ));
            }
            if a.mem_hash != b.mem_hash {
                return Err(format!(
                    "{what}: memory content hash 0x{:016x} vs 0x{:016x}",
                    a.mem_hash, b.mem_hash
                ));
            }
            Ok(())
        }
    }
}

/// The interpreter-differential engine.
pub struct ExecEngine;

impl Engine for ExecEngine {
    type Case = ExecCase;

    fn name() -> &'static str {
        "exec"
    }

    fn generate(rng: &mut FuzzRng) -> ExecCase {
        let kernel = kernel_diff::gen_case(rng);
        let flavor = *rng.pick(&Flavor::all());
        let vlen_bytes = *rng.pick(&[16usize, 32, 64]);
        let slice = rng.chance(1, 2).then(|| rng.range_u64(1, 257));
        let fault = rng.chance(1, 3).then(|| (rng.u64(), rng.range_u64(1, 4)));
        ExecCase {
            kernel,
            flavor,
            vlen_bytes,
            slice,
            fault,
        }
    }

    fn check(case: &ExecCase) -> Result<(), String> {
        let bench = case.kernel.bench();
        let bare = ExecCase {
            fault: None,
            ..*case
        };

        // 1. Traced full runs, fault-free.
        let i = run_one(&bare, bench.as_ref(), ExecMode::Interpret, true, None);
        let t = run_one(&bare, bench.as_ref(), ExecMode::Translated, true, None);
        diff("traced", &i, &t)?;

        // 2. Untraced full runs (the straight-line fast path).
        let iu = run_one(&bare, bench.as_ref(), ExecMode::Interpret, false, None);
        let tu = run_one(&bare, bench.as_ref(), ExecMode::Translated, false, None);
        diff("untraced", &iu, &tu)?;

        // 3. Sliced translated resume against the interpreter's full run.
        if let Some(budget) = case.slice {
            let ts = run_one(
                &bare,
                bench.as_ref(),
                ExecMode::Translated,
                false,
                Some(budget),
            );
            diff(&format!("sliced(budget={budget})"), &iu, &ts)?;
        }

        // 4. Faulted traced runs under the same plan, trap-for-trap.
        if case.fault.is_some() {
            let fi = run_one(case, bench.as_ref(), ExecMode::Interpret, true, None);
            let ft = run_one(case, bench.as_ref(), ExecMode::Translated, true, None);
            diff("faulted", &fi, &ft)?;
            if let (Ok(clean), Ok(faulted)) = (&i, &fi) {
                if clean.mem_hash != faulted.mem_hash || clean.arch_digest != faulted.arch_digest {
                    return Err(format!(
                        "faulted interpreter run did not recover to the clean state \
                         (mem 0x{:016x} vs 0x{:016x})",
                        clean.mem_hash, faulted.mem_hash
                    ));
                }
            }
        }
        Ok(())
    }

    fn shrink(case: &ExecCase) -> Vec<ExecCase> {
        let mut out = Vec::new();
        if case.fault.is_some() {
            out.push(ExecCase {
                fault: None,
                ..*case
            });
        }
        if case.slice.is_some() {
            out.push(ExecCase {
                slice: None,
                ..*case
            });
        }
        out.extend(
            case.kernel
                .smaller()
                .into_iter()
                .map(|kernel| ExecCase { kernel, ..*case }),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_cases_pass() {
        for case in 0..20 {
            crate::replay_one("exec", 1, case).unwrap();
        }
    }

    #[test]
    fn shrink_drops_fault_and_slice_first() {
        let case = ExecCase {
            kernel: KernelCase::Saxpy(64),
            flavor: Flavor::Uve,
            vlen_bytes: 64,
            slice: Some(7),
            fault: Some((3, 2)),
        };
        let cands = ExecEngine::shrink(&case);
        assert!(cands[0].fault.is_none());
        assert!(cands[1].slice.is_none());
        assert!(cands.iter().any(|c| c.kernel == KernelCase::Saxpy(32)));
    }
}
