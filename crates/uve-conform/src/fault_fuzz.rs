//! Differential fuzzing of the fault subsystem.
//!
//! Each case picks a kernel instance (the same generator as the kernel
//! differ, covering all 19 evaluation kernels at randomized sizes) plus a
//! fault schedule — a [`StreamFaultPlan`] for the architectural layer and
//! optionally a hostile [`FaultConfig`] for the timing-model memory
//! hierarchy — and checks three properties end to end:
//!
//! 1. **no panic**: the whole run executes under `catch_unwind`; any
//!    panic (in the emulator, the recovery path, or the timing model) is
//!    a failure, not a crash of the fuzzer;
//! 2. **bit-identical recovery**: a run with injected stream faults must
//!    finish with exactly the memory image ([`content_hash`]) and
//!    architectural state ([`arch_digest`]) of the fault-free run, with
//!    the same committed-instruction count and a passing kernel oracle;
//! 3. **cycle conservation under injection**: replaying the faulted trace
//!    under the out-of-order model (with memory-level injection when the
//!    case asks for it) must still satisfy the accounting conservation
//!    law — the `fault-replay` category absorbs the retry cycles, it
//!    doesn't leak them.
//!
//! [`content_hash`]: uve_mem::Memory::content_hash
//! [`arch_digest`]: uve_core::Emulator::arch_digest

use crate::kernel_diff::{gen_case, KernelCase};
use crate::rng::FuzzRng;
use crate::Engine;
use uve_core::{EmuConfig, Emulator, StreamFaultPlan, Trace};
use uve_cpu::{CpuConfig, OoOCore};
use uve_kernels::{Benchmark, Flavor};
use uve_mem::{FaultConfig, Memory};

/// One fault-conformance case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCase {
    /// The kernel instance to torture.
    pub kernel: KernelCase,
    /// Seed of both the stream-fault plan and the memory injector.
    pub fault_seed: u64,
    /// 1-in-N odds each first-touched page faults in the stream plan
    /// (1 = every page).
    pub page_rate: u64,
    /// Whether the timing replay also runs under hostile memory-hierarchy
    /// injection (transients, poisoned responses, TLB faults).
    pub inject_timing: bool,
}

/// Everything the bit-identity diff compares between two runs.
struct RunSummary {
    mem_hash: u64,
    arch_digest: u64,
    committed: u64,
    faults_taken: u64,
    trace: Trace,
}

/// Runs the kernel's UVE program, optionally under a stream-fault plan,
/// checks the kernel oracle, and summarizes the final state.
fn run_uve(bench: &dyn Benchmark, plan: Option<StreamFaultPlan>) -> Result<RunSummary, String> {
    let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
    bench.setup(&mut emu);
    let label = if plan.is_some() { "faulted" } else { "clean" };
    emu.set_fault_plan(plan);
    let program = bench.program(Flavor::Uve);
    let result = emu
        .run(&program)
        .map_err(|e| format!("{}/{label}: {e}", bench.name()))?;
    bench
        .check(&emu)
        .map_err(|e| format!("{}/{label}: oracle failed: {e}", bench.name()))?;
    Ok(RunSummary {
        mem_hash: emu.mem.content_hash(),
        arch_digest: emu.arch_digest(),
        committed: result.committed,
        faults_taken: emu.faults_taken(),
        trace: result.trace,
    })
}

fn check_case(case: &FaultCase) -> Result<(), String> {
    let bench = case.kernel.bench();

    // Property 2: recovery is bit-identical to the fault-free run.
    let clean = run_uve(bench.as_ref(), None)?;
    let plan = StreamFaultPlan::new(case.fault_seed, case.page_rate);
    let faulted = run_uve(bench.as_ref(), Some(plan))?;
    if faulted.mem_hash != clean.mem_hash {
        return Err(format!(
            "{}: memory diverged after {} recovered fault(s): {:#x} vs clean {:#x}",
            bench.name(),
            faulted.faults_taken,
            faulted.mem_hash,
            clean.mem_hash
        ));
    }
    if faulted.arch_digest != clean.arch_digest {
        return Err(format!(
            "{}: architectural state diverged after {} recovered fault(s)",
            bench.name(),
            faulted.faults_taken
        ));
    }
    if faulted.committed != clean.committed {
        return Err(format!(
            "{}: committed differs under faults: {} vs clean {}",
            bench.name(),
            faulted.committed,
            clean.committed
        ));
    }

    // Property 3: the timing model stays conserved replaying the faulted
    // trace (which carries the stream-fault trap stamps), with memory-level
    // injection layered on top when the case asks for it.
    let mut cpu = CpuConfig::default();
    if case.inject_timing {
        cpu.mem.fault = Some(FaultConfig::hostile(case.fault_seed));
    }
    let stats = OoOCore::new(cpu).run(&faulted.trace);
    stats
        .account
        .check(stats.cycles)
        .map_err(|e| format!("{}: conservation under injection: {e}", bench.name()))?;
    if stats.committed == 0 {
        return Err(format!("{}: timing replay committed nothing", bench.name()));
    }
    Ok(())
}

/// The fault-subsystem engine.
pub struct FaultEngine;

impl Engine for FaultEngine {
    type Case = FaultCase;

    fn name() -> &'static str {
        "fault"
    }

    fn generate(rng: &mut FuzzRng) -> FaultCase {
        FaultCase {
            kernel: gen_case(rng),
            fault_seed: rng.u64(),
            page_rate: *rng.pick(&[1u64, 2, 4, 16]),
            inject_timing: rng.bool(),
        }
    }

    // Property 1: never panic. Any unwind out of the model is converted
    // into an ordinary failure the shrinker can work on.
    fn check(case: &FaultCase) -> Result<(), String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check_case(case))).unwrap_or_else(
            |payload| Err(format!("panicked: {}", uve_bench::panic_message(payload))),
        )
    }

    fn shrink(case: &FaultCase) -> Vec<FaultCase> {
        let mut out: Vec<FaultCase> = case
            .kernel
            .smaller()
            .into_iter()
            .map(|kernel| FaultCase { kernel, ..*case })
            .collect();
        if case.inject_timing {
            out.push(FaultCase {
                inject_timing: false,
                ..*case
            });
        }
        if case.page_rate > 1 {
            // More faults usually reproduce the bug on a smaller kernel.
            out.push(FaultCase {
                page_rate: 1,
                ..*case
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FaultEngine::generate(&mut FuzzRng::for_case(7, "fault", 63));
        let b = FaultEngine::generate(&mut FuzzRng::for_case(7, "fault", 63));
        assert_eq!(a, b);
    }

    #[test]
    fn every_page_faults_still_recovers_on_an_indirect_kernel() {
        // Case (7, 233) generates MamrIndirect(28) with page_rate 1: every
        // first-touched page faults, inside indirect-modifier regions.
        let case = FaultEngine::generate(&mut FuzzRng::for_case(7, "fault", 233));
        assert!(matches!(case.kernel, KernelCase::MamrIndirect(_)));
        assert_eq!(case.page_rate, 1);
        FaultEngine::check(&case).unwrap();
    }

    #[test]
    fn a_panicking_case_is_a_failure_not_a_crash() {
        // Irsmk(0) panics in the kernel constructor (n < 548) — the
        // engine must convert the unwind into an ordinary failure.
        let case = FaultCase {
            kernel: KernelCase::Irsmk(0),
            fault_seed: 1,
            page_rate: 1,
            inject_timing: false,
        };
        let err = FaultEngine::check(&case).unwrap_err();
        assert!(err.starts_with("panicked:"), "{err}");
    }

    #[test]
    fn shrink_prefers_smaller_kernels_and_simpler_schedules() {
        let case = FaultCase {
            kernel: KernelCase::Saxpy(64),
            fault_seed: 3,
            page_rate: 16,
            inject_timing: true,
        };
        let cands = FaultEngine::shrink(&case);
        assert!(cands.iter().any(|c| c.kernel == KernelCase::Saxpy(32)));
        assert!(cands.iter().any(|c| !c.inject_timing));
        assert!(cands.iter().any(|c| c.page_rate == 1));
    }
}
