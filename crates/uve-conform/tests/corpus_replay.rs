//! Replays the checked-in regression corpus (tier-1).
//!
//! Every `(engine, seed, case)` triple in `corpus/regressions.txt` is a
//! fuzz case that once failed (or pins a fixed bug's code path); replaying
//! regenerates it deterministically and re-runs the full differential
//! check.

#[test]
fn corpus_replays_clean() {
    let entries = uve_conform::parse_corpus(uve_conform::CORPUS).expect("corpus syntax");
    let mut failures = Vec::new();
    for (engine, seed, case) in &entries {
        if let Err(e) = uve_conform::replay_one(engine, *seed, *case) {
            failures.push(format!("{engine} {seed} {case}: {e}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus regression(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
