//! Hierarchy-path tests: every request path of Sec. IV-A (normal, stream-L1,
//! stream-L2, stream-memory, full-line stores) and the contention mechanisms
//! (MSHRs, DRAM channels, warm re-measurement).

use uve_mem::{DramConfig, MemConfig, MemSystem, Path, Translation};

fn quiet() -> MemConfig {
    MemConfig {
        l1_prefetcher: false,
        l2_prefetcher: false,
        ..MemConfig::default()
    }
}

#[test]
fn normal_path_fills_both_levels() {
    let mut m = MemSystem::new(quiet());
    m.read(0x4000, 1, 0, Path::Normal);
    // L1 hit on re-access.
    let t = m.read(0x4000, 1, 1000, Path::Normal);
    assert_eq!(t, 1000 + m.config().l1_latency);
    assert_eq!(m.stats().dram.reads, 1);
}

#[test]
fn stream_l1_path_allocates_in_l1() {
    let mut m = MemSystem::new(quiet());
    m.read(0x4000, 1, 0, Path::StreamL1);
    let t = m.read(0x4000, 1, 1000, Path::Normal);
    assert_eq!(t, 1000 + m.config().l1_latency);
}

#[test]
fn stream_l2_l1_miss_l2_hit_after() {
    let mut m = MemSystem::new(quiet());
    m.read(0x4000, 1, 0, Path::StreamL2);
    let s = m.stats();
    assert_eq!(s.l1.accesses(), 0);
    // A later normal access misses L1, hits L2.
    let t = m.read(0x4000, 1, 1000, Path::Normal);
    assert!(t < 1000 + m.config().dram.latency);
    assert!(t >= 1000 + m.config().l2_latency);
}

#[test]
fn full_line_store_avoids_allocate_read() {
    let mut m = MemSystem::new(quiet());
    m.write_full_line(0x8000, 1, 0, Path::StreamL2);
    assert_eq!(m.stats().dram.reads, 0, "no allocate-read for full lines");
    // A conventional write-allocate store does read.
    let mut m2 = MemSystem::new(quiet());
    m2.write(0x8000, 1, 0, Path::StreamL2);
    assert_eq!(m2.stats().dram.reads, 1);
}

#[test]
fn full_line_store_to_dram_is_posted() {
    let mut m = MemSystem::new(quiet());
    let t = m.write_full_line(0x8000, 1, 0, Path::StreamMem);
    assert_eq!(m.stats().dram.writes, 1);
    assert!(t < m.config().dram.latency, "posted, not a round trip");
}

#[test]
fn l1_mshrs_serialize_excess_misses() {
    let cfg = MemConfig {
        l1_mshrs: 2,
        ..quiet()
    };
    let mut m = MemSystem::new(cfg);
    // Four misses on distinct lines/channels issued the same cycle: the
    // 3rd and 4th wait for MSHR slots.
    let t1 = m.read(0x10000, 1, 0, Path::Normal);
    let t2 = m.read(0x10040, 1, 0, Path::Normal);
    let t3 = m.read(0x10080, 1, 0, Path::Normal);
    let t4 = m.read(0x100c0, 1, 0, Path::Normal);
    assert!(t3 >= t1.min(t2), "third miss waits for a slot");
    assert!(t4 > t1.min(t2));
}

#[test]
fn dram_channels_interleave_by_line() {
    let mut m = MemSystem::new(MemConfig {
        dram: DramConfig {
            channels: 2,
            ..DramConfig::default()
        },
        ..quiet()
    });
    // Even/odd lines map to different channels: same-cycle requests to
    // adjacent lines do not queue behind each other.
    let a = m.read(0, 1, 0, Path::StreamMem);
    let b = m.read(64, 1, 0, Path::StreamMem);
    assert_eq!(a, b);
    // Two requests on the same channel queue.
    let c = m.read(128, 1, 0, Path::StreamMem);
    assert!(c > a);
}

#[test]
fn reset_stats_keeps_cache_contents() {
    let mut m = MemSystem::new(quiet());
    m.read(0x4000, 1, 0, Path::Normal);
    m.reset_stats();
    assert_eq!(m.stats().dram.reads, 0);
    // Still a hit: contents survived.
    let t = m.read(0x4000, 1, 10, Path::Normal);
    assert_eq!(t, 10 + m.config().l1_latency);
    assert_eq!(m.stats().l1.hits, 1);
}

#[test]
fn bus_utilization_counts_reads_and_writes() {
    let mut m = MemSystem::new(quiet());
    for i in 0..8u64 {
        m.read(0x40000 + i * 64, 1, 0, Path::StreamMem);
        m.write_full_line(0x80000 + i * 64, 1, 0, Path::StreamMem);
    }
    let s = m.stats();
    assert_eq!(s.dram.read_bytes, 8 * 64);
    assert_eq!(s.dram.write_bytes, 8 * 64);
    assert!(m.bus_utilization(1000) > 0.0);
}

#[test]
fn translation_faults_are_page_granular() {
    let mut m = MemSystem::new(quiet());
    m.tlb_mut().mark_faulting(0x30_0000);
    assert!(matches!(m.translate(0x30_0ff8), Translation::Fault { .. }));
    assert!(matches!(m.translate(0x30_1000), Translation::Ok { .. }));
    m.tlb_mut().clear_fault(0x30_0000);
    assert!(matches!(m.translate(0x30_0ff8), Translation::Ok { .. }));
}

#[test]
fn prefetchers_only_train_on_demand_traffic() {
    // Stream-path reads must not trigger AMPM prefetch fills.
    let mut m = MemSystem::new(MemConfig {
        l1_prefetcher: false,
        l2_prefetcher: true,
        ..MemConfig::default()
    });
    let mut now = 0;
    for i in 0..32u64 {
        now = m.read(0x40000 + i * 64, 1, now, Path::StreamL2);
    }
    assert_eq!(m.stats().l2.prefetch_fills, 0);
    // The same sequence as demand traffic does train it.
    let mut m2 = MemSystem::new(MemConfig {
        l1_prefetcher: false,
        l2_prefetcher: true,
        ..MemConfig::default()
    });
    let mut now = 0;
    for i in 0..32u64 {
        now = m2.read(0x40000 + i * 64, 1, now, Path::Normal);
    }
    assert!(m2.stats().l2.prefetch_fills > 0);
}
