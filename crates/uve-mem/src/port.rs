//! [`MemPort`]: one agent's access interface to a memory hierarchy.
//!
//! The out-of-order core and the Streaming Engine issue every request
//! through this trait, so the same timing code runs against either the
//! single-core [`MemSystem`] or one core's port into the shared multicore
//! hierarchy ([`SmpPort`](crate::SmpPort)). The single-core implementation
//! delegates to the inherent methods one-for-one, so making the callers
//! generic changes no timing.

use crate::fault::FaultStats;
use crate::hierarchy::{MemStats, Path, ReadOutcome};
use crate::tlb::Translation;

/// One agent's view of a memory hierarchy: translation, fault-injection
/// queries, and timed reads/writes along the paper's request paths.
///
/// All methods mirror [`MemSystem`](crate::MemSystem)'s inherent API; see
/// the documentation there for the timing semantics.
pub trait MemPort {
    /// Translates a virtual address (streams and the LSQ both use this).
    fn translate(&mut self, vaddr: u64) -> Translation;

    /// Does the request for `line` transiently fail at retry `attempt`?
    fn fault_transient(&mut self, line: u64, attempt: u32) -> bool;

    /// Is a response for `line` poisoned at retry `attempt`?
    fn fault_poisoned(&mut self, line: u64, attempt: u32, from_dram: bool, path: Path) -> bool;

    /// Backoff in cycles before retry `attempt`.
    fn fault_backoff(&self, attempt: u32) -> u64;

    /// Injected-fault counters for this agent.
    fn fault_stats(&self) -> FaultStats;

    /// A demand read with stall attribution (MSHR wait, DRAM service,
    /// snoop forwarding).
    fn read_explained(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> ReadOutcome;

    /// A demand read; returns the data-ready cycle.
    fn read(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> u64 {
        self.read_explained(addr, pc, now, path).ready
    }

    /// A demand write (write-allocate); returns the acceptance cycle.
    fn write(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> u64;

    /// A full-line write (no allocate-read needed); returns the acceptance
    /// cycle.
    fn write_full_line(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> u64;

    /// This agent's aggregated statistics (for the multicore hierarchy:
    /// the per-core slice, with shared-device traffic attributed to the
    /// cores that caused it).
    fn stats(&self) -> MemStats;

    /// DRAM bus utilization over `cycles`.
    fn bus_utilization(&self, cycles: u64) -> f64;
}

impl MemPort for crate::MemSystem {
    fn translate(&mut self, vaddr: u64) -> Translation {
        MemSystem::translate(self, vaddr)
    }

    fn fault_transient(&mut self, line: u64, attempt: u32) -> bool {
        MemSystem::fault_transient(self, line, attempt)
    }

    fn fault_poisoned(&mut self, line: u64, attempt: u32, from_dram: bool, path: Path) -> bool {
        MemSystem::fault_poisoned(self, line, attempt, from_dram, path)
    }

    fn fault_backoff(&self, attempt: u32) -> u64 {
        MemSystem::fault_backoff(self, attempt)
    }

    fn fault_stats(&self) -> FaultStats {
        MemSystem::fault_stats(self)
    }

    fn read_explained(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> ReadOutcome {
        MemSystem::read_explained(self, addr, pc, now, path)
    }

    fn write(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> u64 {
        MemSystem::write(self, addr, pc, now, path)
    }

    fn write_full_line(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> u64 {
        MemSystem::write_full_line(self, addr, pc, now, path)
    }

    fn stats(&self) -> MemStats {
        MemSystem::stats(self)
    }

    fn bus_utilization(&self, cycles: u64) -> f64 {
        MemSystem::bus_utilization(self, cycles)
    }
}

use crate::MemSystem;

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait delegation must be observationally identical to the
    /// inherent API (same outcomes, same state evolution).
    #[test]
    fn port_matches_inherent_api() {
        let cfg = crate::MemConfig::default();
        let mut direct = MemSystem::new(cfg.clone());
        let mut ported = MemSystem::new(cfg);
        let port: &mut dyn MemPort = &mut ported;
        for i in 0..32u64 {
            let addr = 0x4_0000 + i * 64;
            assert_eq!(
                direct.read_explained(addr, 7, i, Path::Normal),
                port.read_explained(addr, 7, i, Path::Normal)
            );
            assert_eq!(
                direct.write(addr + 0x1000, 8, i, Path::StreamL2),
                port.write(addr + 0x1000, 8, i, Path::StreamL2)
            );
            assert_eq!(direct.translate(addr), port.translate(addr));
        }
        assert_eq!(direct.stats(), port.stats());
    }
}
