//! Deterministic, seeded fault injection for the memory hierarchy.
//!
//! The injector models three fault classes the paper's stream architecture
//! must survive (Sec. IV-A *Exception Handling*, Sec. V):
//!
//! - **translation faults**: a page's first stream touch raises a TLB
//!   fault (the arbiter flags the element; the core traps precisely at the
//!   first consuming instruction);
//! - **transient request faults**: a line request fails before issue
//!   (arbitration conflict, ECC scrub window) and must be retried after a
//!   backoff;
//! - **poisoned responses**: the data arrives but is marked bad by the
//!   serving level (L1/L2/DRAM each with their own odds) and must be
//!   refetched.
//!
//! Every decision is a pure hash of `(seed, fault class, line/page,
//! attempt)` — no RNG state — so outcomes are independent of request
//! order, clone-safe, and bit-reproducible from the seed alone. Retries
//! are *bounded*: once `attempt` reaches [`FaultConfig::max_retries`] the
//! injector forces success, so a fault can delay a stream but never
//! livelock it.

use std::collections::HashSet;

/// Fault-injection odds and retry policy. All rates are "1 in N" odds per
/// decision; a rate of 0 disables that fault class.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the decision hash; two runs with equal seeds inject
    /// identical fault schedules.
    pub seed: u64,
    /// 1-in-N odds a line request transiently fails before issue.
    pub transient_rate: u32,
    /// 1-in-N odds an L1-served response is poisoned.
    pub poison_l1_rate: u32,
    /// 1-in-N odds an L2-served response is poisoned.
    pub poison_l2_rate: u32,
    /// 1-in-N odds a DRAM-served response is poisoned.
    pub poison_dram_rate: u32,
    /// 1-in-N odds a page's *first* translation raises a fault (each page
    /// faults at most once; the handler maps it).
    pub tlb_fault_rate: u32,
    /// Attempts after which the injector forces success (bounded retry).
    pub max_retries: u32,
    /// Base backoff in cycles; attempt `k` waits `(k+1) * retry_backoff`.
    pub retry_backoff: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            transient_rate: 0,
            poison_l1_rate: 0,
            poison_l2_rate: 0,
            poison_dram_rate: 0,
            tlb_fault_rate: 0,
            max_retries: 4,
            retry_backoff: 16,
        }
    }
}

impl FaultConfig {
    /// A moderately hostile configuration for tests and fuzzing: every
    /// class enabled at odds that fire many times per kernel without
    /// dominating the run.
    pub fn hostile(seed: u64) -> Self {
        Self {
            seed,
            transient_rate: 64,
            poison_l1_rate: 256,
            poison_l2_rate: 128,
            poison_dram_rate: 64,
            tlb_fault_rate: 8,
            max_retries: 4,
            retry_backoff: 16,
        }
    }
}

/// Which level served a (potentially poisoned) response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLevel {
    /// Served by the L1-D.
    L1,
    /// Served by the L2.
    L2,
    /// Served by DRAM.
    Dram,
}

/// Counters of injected faults (zeroed by `reset_stats`; the handled-page
/// set survives, mirroring an OS page table across measurement windows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient request faults injected.
    pub transient_faults: u64,
    /// Poisoned responses injected.
    pub poisoned_responses: u64,
    /// First-touch page faults injected.
    pub injected_page_faults: u64,
}

/// The seeded injector. Carried by
/// [`MemSystem`](crate::MemSystem) when
/// [`MemConfig::fault`](crate::MemConfig) is set.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    /// Pages whose injected fault has been handled (mapped); a page faults
    /// at most once regardless of traversal order.
    handled: HashSet<u64>,
    stats: FaultStats,
}

/// SplitMix64 finalizer — the decision hash.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl FaultInjector {
    /// An injector following `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        Self {
            cfg,
            handled: HashSet::new(),
            stats: FaultStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Injected-fault counters.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Zeroes the counters but keeps the handled-page set (warm-run
    /// semantics: a handled page stays mapped across measurement passes).
    pub fn reset_stats(&mut self) {
        self.stats = FaultStats::default();
    }

    /// Pure decision: does fault class `domain` fire for `key` at retry
    /// `attempt`? Forces success once `attempt` reaches `max_retries`.
    fn roll(&self, domain: u64, key: u64, attempt: u32, rate: u32) -> bool {
        if rate == 0 || attempt >= self.cfg.max_retries {
            return false;
        }
        let h = mix(self
            .cfg
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(domain)
            .wrapping_add(key.wrapping_mul(0xd1342543de82ef95))
            .wrapping_add(u64::from(attempt) << 56));
        h.is_multiple_of(u64::from(rate))
    }

    /// Does the request for `line` transiently fail at retry `attempt`?
    pub fn transient(&mut self, line: u64, attempt: u32) -> bool {
        let hit = self.roll(1, line, attempt, self.cfg.transient_rate);
        if hit {
            self.stats.transient_faults += 1;
        }
        hit
    }

    /// Is the response for `line`, served by `level`, poisoned at retry
    /// `attempt`?
    pub fn poisoned(&mut self, line: u64, attempt: u32, level: FaultLevel) -> bool {
        let rate = match level {
            FaultLevel::L1 => self.cfg.poison_l1_rate,
            FaultLevel::L2 => self.cfg.poison_l2_rate,
            FaultLevel::Dram => self.cfg.poison_dram_rate,
        };
        let hit = self.roll(2, line, attempt, rate);
        if hit {
            self.stats.poisoned_responses += 1;
        }
        hit
    }

    /// Does the first touch of `page` raise an injected translation fault?
    /// Marks the page handled, so it faults exactly once.
    pub fn page_fault_on_first_touch(&mut self, page: u64) -> bool {
        if self.cfg.tlb_fault_rate == 0 || self.handled.contains(&page) {
            return false;
        }
        self.handled.insert(page);
        let hit = self.roll(3, page, 0, self.cfg.tlb_fault_rate);
        if hit {
            self.stats.injected_page_faults += 1;
        }
        hit
    }

    /// Backoff in cycles before retry `attempt` (linear in the attempt).
    pub fn backoff(&self, attempt: u32) -> u64 {
        self.cfg
            .retry_backoff
            .saturating_mul(u64::from(attempt) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let cfg = FaultConfig::hostile(42);
        let mut a = FaultInjector::new(cfg.clone());
        let mut b = FaultInjector::new(cfg);
        let fwd: Vec<bool> = (0..4096).map(|l| a.transient(l, 0)).collect();
        let bwd: Vec<bool> = (0..4096).rev().map(|l| b.transient(l, 0)).collect();
        assert_eq!(fwd, bwd.into_iter().rev().collect::<Vec<_>>());
        assert!(fwd.iter().any(|&x| x), "rate 64 must fire over 4096 lines");
        assert!(!fwd.iter().all(|&x| x));
    }

    #[test]
    fn retries_are_bounded() {
        let cfg = FaultConfig {
            transient_rate: 1, // every roll fires…
            max_retries: 3,    // …until the bound forces success
            ..FaultConfig::hostile(7)
        };
        let mut f = FaultInjector::new(cfg);
        assert!(f.transient(10, 0));
        assert!(f.transient(10, 1));
        assert!(f.transient(10, 2));
        assert!(!f.transient(10, 3), "attempt == max_retries must succeed");
        assert_eq!(f.stats().transient_faults, 3);
    }

    #[test]
    fn pages_fault_at_most_once() {
        let cfg = FaultConfig {
            tlb_fault_rate: 1,
            ..FaultConfig::hostile(9)
        };
        let mut f = FaultInjector::new(cfg);
        assert!(f.page_fault_on_first_touch(5));
        assert!(!f.page_fault_on_first_touch(5), "handled pages stay mapped");
        assert_eq!(f.stats().injected_page_faults, 1);
        // reset_stats keeps the handled set (warm-run semantics).
        f.reset_stats();
        assert!(!f.page_fault_on_first_touch(5));
        assert_eq!(f.stats().injected_page_faults, 0);
    }

    #[test]
    fn backoff_grows_with_attempts() {
        let f = FaultInjector::new(FaultConfig::hostile(1));
        assert!(f.backoff(0) > 0);
        assert!(f.backoff(3) > f.backoff(0));
    }

    #[test]
    fn zero_rates_never_fire() {
        let mut f = FaultInjector::new(FaultConfig::default());
        assert!((0..1000).all(|l| !f.transient(l, 0)));
        assert!((0..1000).all(|p| !f.page_fault_on_first_touch(p)));
        assert!((0..1000).all(|l| !f.poisoned(l, 0, FaultLevel::Dram)));
    }
}
