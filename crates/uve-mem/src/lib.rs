//! Memory subsystem for the UVE reproduction: functional memory plus the
//! timing models of Table I of *"Unlimited Vector Extension with Data
//! Streaming Support"* (ISCA 2021).
//!
//! Components:
//!
//! - [`Memory`]: sparse paged byte-addressable functional memory (also a
//!   [`uve_stream::StreamMemory`], so stream walkers can resolve indirect
//!   patterns against it);
//! - [`Cache`]: set-associative LRU cache with MOESI line states and
//!   prefetch-timeliness tracking;
//! - [`StridePrefetcher`] / [`AmpmPrefetcher`]: the baseline L1/L2
//!   prefetchers of Table I;
//! - [`Dram`]: dual-channel DDR3-1600 latency/bandwidth model, the source of
//!   the Fig. 8.D bus-utilization metric;
//! - [`Tlb`]: translation with page-fault injection (streams prefetch across
//!   page boundaries and flag faults for commit-time handling);
//! - [`FaultInjector`]: deterministic seeded fault injection (first-touch
//!   translation faults, transient request faults, poisoned responses with
//!   per-level odds and bounded retry), enabled via [`MemConfig::fault`];
//! - [`MemSystem`]: the composed hierarchy with the paper's stream request
//!   paths ([`Path::StreamL1`], [`Path::StreamL2`], [`Path::StreamMem`]);
//! - [`MemPort`]: the access interface shared by the single-core hierarchy
//!   and one core's view of the multicore hierarchy — the timing core and
//!   Streaming Engine are generic over it;
//! - [`SmpMem`]: N private L1-D + TLB + prefetcher slices over one shared
//!   L2/DRAM, connected by a [`SnoopBus`] that drives the MOESI
//!   `snoop_share`/`snoop_invalidate` hooks (cross-core invalidations,
//!   M/O owner forwarding, bus arbitration, per-core [`SnoopStats`]).
//!
//! The timing style is analytic: accesses mutate cache/DRAM state and return
//! a data-ready cycle, modelling the contention that matters for the paper's
//! experiments (DRAM channel occupancy, L2 port serialization) without a
//! global event queue. This substitution is documented in `DESIGN.md`.

#![warn(missing_docs)]

mod cache;
mod dram;
mod fault;
mod hierarchy;
mod memory;
mod port;
mod prefetch;
mod profile;
mod smp;
mod tlb;

pub use cache::{Access, Cache, CacheStats, MoesiState, LINE_BYTES};
pub use dram::{Dram, DramConfig, DramStats};
pub use fault::{FaultConfig, FaultInjector, FaultLevel, FaultStats};
pub use hierarchy::{MemConfig, MemStats, MemSystem, Path, ReadOutcome};
pub use memory::{Memory, PAGE_SIZE};
pub use port::MemPort;
pub use prefetch::{AmpmPrefetcher, PrefetchRequest, StridePrefetcher};
pub use profile::{LatencyHist, ReadProfile, ReqClass, ServedBy, LATENCY_BUCKETS};
pub use smp::{CoherenceViolation, SmpMem, SmpPort, SnoopBus, SnoopStats};
pub use tlb::{Tlb, Translation};
