//! Hardware prefetchers: a PC-indexed stride prefetcher (L1-D) and an
//! Access-Map Pattern-Matching (AMPM) prefetcher (L2), matching the baseline
//! configuration of Table I.

use std::collections::HashMap;

/// A prefetch suggestion: a line address to bring into the cache.
pub type PrefetchRequest = u64;

/// Per-PC stride detector driving the L1-D prefetcher.
///
/// Classic RPT-style design: each load PC tracks its last address and
/// stride; after two confirmations, lines up to `depth` strides ahead are
/// prefetched.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    depth: usize,
    table: HashMap<u64, StrideEntry>,
    capacity: usize,
    issued: u64,
}

#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    last_addr: u64,
    stride: i64,
    confidence: u8,
    next_degree: usize,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher of the given lookahead `depth` (Table I:
    /// 16) and table `capacity` entries.
    pub fn new(depth: usize, capacity: usize) -> Self {
        Self {
            depth,
            table: HashMap::new(),
            capacity,
            issued: 0,
        }
    }

    /// Number of prefetch requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observes a demand access from load/store `pc` to byte address `addr`
    /// and returns the line addresses to prefetch.
    pub fn observe(&mut self, pc: u64, addr: u64) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        match self.table.get_mut(&pc) {
            Some(e) => {
                let stride = addr as i64 - e.last_addr as i64;
                if stride == e.stride && stride != 0 {
                    if e.confidence < 1 {
                        e.confidence += 1;
                    }
                    if e.confidence >= 1 {
                        // Sliding lookahead: ramp the prefetch distance up
                        // to `depth` strides, issuing at most two new lines
                        // per access (real prefetchers do not flood their
                        // whole window on every trigger).
                        let degree = e.next_degree.min(self.depth);
                        let base = addr as i64;
                        let mut last_line = u64::MAX;
                        for k in [degree.saturating_sub(1).max(1), degree] {
                            let target = base + stride * k as i64;
                            if target < 0 {
                                continue;
                            }
                            let line = target as u64 / crate::cache::LINE_BYTES;
                            if line != last_line {
                                out.push(line);
                                last_line = line;
                            }
                        }
                        e.next_degree = (e.next_degree + 2).min(self.depth);
                    }
                } else {
                    e.stride = stride;
                    e.confidence = 0;
                    e.next_degree = 2;
                }
                e.last_addr = addr;
            }
            None => {
                if self.table.len() >= self.capacity {
                    // Cheap pseudo-random replacement: drop an arbitrary
                    // entry (HashMap iteration order).
                    if let Some(&k) = self.table.keys().next() {
                        self.table.remove(&k);
                    }
                }
                self.table.insert(
                    pc,
                    StrideEntry {
                        last_addr: addr,
                        stride: 0,
                        confidence: 0,
                        next_degree: 2,
                    },
                );
            }
        }
        self.issued += out.len() as u64;
        out
    }
}

/// Access-Map Pattern-Matching prefetcher (Ishii et al., ICS'09), the L2
/// prefetcher of Table I.
///
/// Memory is divided into zones (here 4 KiB); each zone keeps a bitmap of
/// recently accessed lines. On each access, candidate offsets `±d` are
/// prefetched when the two preceding accesses at the same spacing
/// (`addr - d`, `addr - 2d`) are present in the map — the AMPM pattern
/// match.
#[derive(Debug, Clone)]
pub struct AmpmPrefetcher {
    zone_lines: usize,
    zones: HashMap<u64, u64>,
    /// Lines already requested by the prefetcher (the real AMPM's
    /// per-line *prefetch* state): excluded as candidates so the prefetch
    /// distance ramps forward instead of re-targeting the same offsets.
    pf_zones: HashMap<u64, u64>,
    zone_queue: Vec<u64>,
    max_zones: usize,
    degree: usize,
    issued: u64,
}

impl AmpmPrefetcher {
    /// Creates an AMPM prefetcher tracking up to `max_zones` 4 KiB zones and
    /// issuing at most `degree` prefetches per access (Table I: queue size
    /// 32).
    pub fn new(max_zones: usize, degree: usize) -> Self {
        Self {
            zone_lines: (4096 / crate::cache::LINE_BYTES) as usize,
            zones: HashMap::new(),
            pf_zones: HashMap::new(),
            zone_queue: Vec::new(),
            max_zones,
            degree,
            issued: 0,
        }
    }

    /// Number of prefetch requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    fn bit(&self, line: u64) -> (u64, u32) {
        let zone = line / self.zone_lines as u64;
        let bit = (line % self.zone_lines as u64) as u32;
        (zone, bit)
    }

    fn is_set(&self, line: i64) -> bool {
        if line < 0 {
            return false;
        }
        let (zone, bit) = self.bit(line as u64);
        self.zones.get(&zone).is_some_and(|m| m & (1 << bit) != 0)
    }

    fn is_prefetched(&self, line: i64) -> bool {
        if line < 0 {
            return false;
        }
        let (zone, bit) = self.bit(line as u64);
        self.pf_zones
            .get(&zone)
            .is_some_and(|m| m & (1 << bit) != 0)
    }

    fn mark_prefetched(&mut self, line: u64) {
        let (zone, bit) = self.bit(line);
        *self.pf_zones.entry(zone).or_insert(0) |= 1 << bit;
    }

    /// Observes a demand access to `line` (line address) and returns lines
    /// to prefetch.
    pub fn observe(&mut self, line: u64) -> Vec<PrefetchRequest> {
        // Record the access.
        let (zone, bit) = self.bit(line);
        if self.zones.len() >= self.max_zones && !self.zones.contains_key(&zone) {
            let victim = self.zone_queue.remove(0);
            self.zones.remove(&victim);
            self.pf_zones.remove(&victim);
        }
        let entry = self.zones.entry(zone).or_insert_with(|| {
            self.zone_queue.push(zone);
            0
        });
        *entry |= 1 << bit;

        // Pattern match: for each candidate spacing d, require line-d and
        // line-2d set, then prefetch line+d.
        let mut out = Vec::new();
        let l = line as i64;
        for d in 1..=self.zone_lines as i64 / 2 {
            if out.len() >= self.degree {
                break;
            }
            if self.is_set(l - d)
                && self.is_set(l - 2 * d)
                && !self.is_set(l + d)
                && !self.is_prefetched(l + d)
            {
                out.push((l + d) as u64);
            }
            if out.len() >= self.degree {
                break;
            }
            if self.is_set(l + d)
                && self.is_set(l + 2 * d)
                && !self.is_set(l - d)
                && !self.is_prefetched(l - d)
                && l - d >= 0
            {
                out.push((l - d) as u64);
            }
        }
        for &line in &out {
            self.mark_prefetched(line);
        }
        self.issued += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_detects_after_confirmation() {
        let mut p = StridePrefetcher::new(16, 64);
        assert!(p.observe(100, 0x1000).is_empty());
        assert!(p.observe(100, 0x1040).is_empty()); // stride learned
        let reqs = p.observe(100, 0x1080); // confirmed → prefetch ahead
        assert!(!reqs.is_empty());
        assert_eq!(reqs[0], (0x1080 + 0x40) / 64);
    }

    #[test]
    fn stride_resets_on_change() {
        let mut p = StridePrefetcher::new(16, 64);
        p.observe(1, 0);
        p.observe(1, 64);
        assert!(!p.observe(1, 128).is_empty());
        assert!(p.observe(1, 1024).is_empty()); // stride broke
        assert!(p.observe(1, 1024 + 64).is_empty()); // re-learning (stride changed)
    }

    #[test]
    fn stride_ramps_lookahead_to_depth() {
        let mut p = StridePrefetcher::new(8, 64);
        p.observe(1, 0);
        for i in 1..20 {
            p.observe(1, i * 64);
        }
        let reqs = p.observe(1, 20 * 64);
        // At most two requests per access, with the farthest at `depth`
        // strides of lookahead.
        assert!(reqs.len() <= 2, "{reqs:?}");
        assert_eq!(
            *reqs.last().expect("prefetcher must have issued requests"),
            (20 + 8) * 64 / 64
        );
    }

    #[test]
    fn stride_table_capacity_bounded() {
        let mut p = StridePrefetcher::new(4, 4);
        for pc in 0..100 {
            p.observe(pc, pc * 4096);
        }
        assert!(p.table.len() <= 4);
    }

    #[test]
    fn ampm_matches_linear_pattern() {
        let mut p = AmpmPrefetcher::new(8, 4);
        assert!(p.observe(10).is_empty());
        assert!(!p.observe(11).is_empty() || !p.observe(12).is_empty());
        let reqs = p.observe(13);
        assert!(reqs.contains(&14), "{reqs:?}");
    }

    #[test]
    fn ampm_matches_strided_pattern() {
        let mut p = AmpmPrefetcher::new(8, 4);
        p.observe(0);
        p.observe(3);
        let reqs = p.observe(6);
        assert!(reqs.contains(&9), "{reqs:?}");
    }

    #[test]
    fn ampm_zone_capacity_bounded() {
        let mut p = AmpmPrefetcher::new(2, 4);
        p.observe(0);
        p.observe(64); // zone 1
        p.observe(128); // zone 2 → evicts zone 0
        assert!(p.zones.len() <= 2);
    }

    #[test]
    fn ampm_respects_degree() {
        let mut p = AmpmPrefetcher::new(8, 1);
        for l in 0..6 {
            p.observe(l);
        }
        assert!(p.observe(6).len() <= 1);
    }
}
