//! Per-request latency profiling: who asked (demand load, stream,
//! prefetcher, write-allocate), who answered (L1, L2, DRAM), and how long
//! it took, as power-of-two latency histograms.
//!
//! The profile is part of [`MemStats`](crate::MemStats) and obeys two
//! conservation laws checked by `tests/cycle_accounting.rs`:
//!
//! - every DRAM read appears in exactly one `(class, Dram)` histogram, so
//!   the per-class DRAM counts sum to `DramStats::reads`;
//! - every demand/stream `read()` records exactly one sample, so the
//!   `Demand` + `Stream` sample counts sum to `MemStats::reads`.

/// Who issued a profiled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqClass {
    /// Conventional demand load from the core ([`Path::Normal`]).
    ///
    /// [`Path::Normal`]: crate::Path::Normal
    Demand,
    /// Streaming Engine request (any stream path).
    Stream,
    /// Hardware prefetch (L1 stride or L2 AMPM).
    Prefetch,
    /// Line fetch triggered by a write-allocate miss.
    WriteAlloc,
}

impl ReqClass {
    /// All classes, in display order.
    pub const ALL: [ReqClass; 4] = [
        ReqClass::Demand,
        ReqClass::Stream,
        ReqClass::Prefetch,
        ReqClass::WriteAlloc,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ReqClass::Demand => "demand",
            ReqClass::Stream => "stream",
            ReqClass::Prefetch => "prefetch",
            ReqClass::WriteAlloc => "write-alloc",
        }
    }

    fn index(self) -> usize {
        match self {
            ReqClass::Demand => 0,
            ReqClass::Stream => 1,
            ReqClass::Prefetch => 2,
            ReqClass::WriteAlloc => 3,
        }
    }
}

/// Which level of the hierarchy served a profiled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Data came out of the L1-D.
    L1,
    /// Data came out of the unified L2.
    L2,
    /// Data came from DRAM.
    Dram,
    /// Data was forwarded cache-to-cache from another core's L1 holding the
    /// line dirty (MOESI owner forwarding over the snoop bus). Only the
    /// multicore hierarchy ([`SmpMem`](crate::SmpMem)) records this level;
    /// single-core counts stay zero.
    Remote,
}

impl ServedBy {
    /// All levels, in hierarchy order.
    pub const ALL: [ServedBy; 4] = [ServedBy::L1, ServedBy::Remote, ServedBy::L2, ServedBy::Dram];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ServedBy::L1 => "L1",
            ServedBy::L2 => "L2",
            ServedBy::Dram => "DRAM",
            ServedBy::Remote => "rem-L1",
        }
    }

    fn index(self) -> usize {
        match self {
            ServedBy::L1 => 0,
            ServedBy::L2 => 1,
            ServedBy::Dram => 2,
            ServedBy::Remote => 3,
        }
    }
}

/// Number of power-of-two latency buckets; bucket `i` covers
/// `[2^i, 2^(i+1))` cycles (bucket 0 covers `[0, 2)`), the last bucket is
/// open-ended.
pub const LATENCY_BUCKETS: usize = 12;

/// A latency distribution: integer-only (deterministic across job counts)
/// count/total/max plus power-of-two buckets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyHist {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all sampled latencies, in cycles.
    pub total_cycles: u64,
    /// Largest sampled latency.
    pub max_cycles: u64,
    /// Power-of-two buckets; see [`LATENCY_BUCKETS`].
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl LatencyHist {
    /// Records one sample of `latency` cycles.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.total_cycles += latency;
        self.max_cycles = self.max_cycles.max(latency);
        self.buckets[Self::bucket_of(latency)] += 1;
    }

    /// Bucket index holding `latency` (saturating into the last bucket).
    pub fn bucket_of(latency: u64) -> usize {
        ((64 - latency.leading_zeros() as usize).saturating_sub(1)).min(LATENCY_BUCKETS - 1)
    }

    /// Mean latency (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.count as f64
        }
    }

    /// Sum of bucket counts — always equals `count` (conservation law).
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Latency histograms for every `(requester class, serving level)` pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadProfile {
    hists: [[LatencyHist; 4]; 4],
}

impl ReadProfile {
    /// Records one served read.
    pub fn record(&mut self, class: ReqClass, served: ServedBy, latency: u64) {
        self.hists[class.index()][served.index()].record(latency);
    }

    /// The histogram for one `(class, level)` pair.
    pub fn get(&self, class: ReqClass, served: ServedBy) -> &LatencyHist {
        &self.hists[class.index()][served.index()]
    }

    /// Total samples for a class across all serving levels.
    pub fn class_count(&self, class: ReqClass) -> u64 {
        ServedBy::ALL
            .iter()
            .map(|&s| self.get(class, s).count)
            .sum()
    }

    /// Total samples served by one level across all classes.
    pub fn served_count(&self, served: ServedBy) -> u64 {
        ReqClass::ALL
            .iter()
            .map(|&c| self.get(c, served).count)
            .sum()
    }

    /// All samples.
    pub fn total_count(&self) -> u64 {
        ServedBy::ALL.iter().map(|&s| self.served_count(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_power_of_two_ranges() {
        assert_eq!(LatencyHist::bucket_of(0), 0);
        assert_eq!(LatencyHist::bucket_of(1), 0);
        assert_eq!(LatencyHist::bucket_of(2), 1);
        assert_eq!(LatencyHist::bucket_of(3), 1);
        assert_eq!(LatencyHist::bucket_of(4), 2);
        assert_eq!(LatencyHist::bucket_of(1023), 9);
        assert_eq!(LatencyHist::bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn hist_conserves_samples() {
        let mut h = LatencyHist::default();
        for lat in [0, 1, 4, 13, 70, 700, 1 << 40] {
            h.record(lat);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.bucket_total(), 7);
        assert_eq!(h.max_cycles, 1 << 40);
        assert_eq!(h.total_cycles, 1 + 4 + 13 + 70 + 700 + (1u64 << 40));
    }

    #[test]
    fn profile_marginals_add_up() {
        let mut p = ReadProfile::default();
        p.record(ReqClass::Demand, ServedBy::L1, 4);
        p.record(ReqClass::Demand, ServedBy::Dram, 90);
        p.record(ReqClass::Stream, ServedBy::L2, 13);
        p.record(ReqClass::Prefetch, ServedBy::Dram, 80);
        assert_eq!(p.class_count(ReqClass::Demand), 2);
        assert_eq!(p.served_count(ServedBy::Dram), 2);
        assert_eq!(p.total_count(), 4);
        assert_eq!(p.get(ReqClass::Stream, ServedBy::L2).count, 1);
    }

    #[test]
    fn remote_level_counts_into_marginals() {
        let mut p = ReadProfile::default();
        p.record(ReqClass::Demand, ServedBy::Remote, 17);
        p.record(ReqClass::Stream, ServedBy::Remote, 17);
        assert_eq!(p.served_count(ServedBy::Remote), 2);
        assert_eq!(p.class_count(ReqClass::Demand), 1);
        assert_eq!(p.total_count(), 2);
        // Owner forwarding never touches DRAM: the DRAM conservation law is
        // unaffected by remote-served reads.
        assert_eq!(p.served_count(ServedBy::Dram), 0);
    }
}
