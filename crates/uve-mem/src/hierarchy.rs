//! The composed memory hierarchy: L1-D + stride prefetcher, unified L2 +
//! AMPM prefetcher, DRAM, with the stream request paths of the paper
//! (L1 / L2 / direct-memory streaming, Sec. IV-A *Cache Access*).

use crate::cache::{Access, Cache, CacheStats, LINE_BYTES};
use crate::dram::{Dram, DramConfig, DramStats};
use crate::fault::{FaultConfig, FaultInjector, FaultLevel, FaultStats};
use crate::memory::PAGE_SIZE;
use crate::prefetch::{AmpmPrefetcher, StridePrefetcher};
use crate::profile::{ReadProfile, ReqClass, ServedBy};
use crate::smp::SnoopStats;
use crate::tlb::{Tlb, Translation};

/// Configuration of the memory hierarchy (Table I defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// L1-D capacity in bytes (Table I: 64 KB).
    pub l1_size: usize,
    /// L1-D associativity (4-way).
    pub l1_ways: usize,
    /// L1 load-to-use latency in cycles.
    pub l1_latency: u64,
    /// L2 capacity in bytes (256 KB).
    pub l2_size: usize,
    /// L2 associativity (8-way).
    pub l2_ways: usize,
    /// L2 load-to-use latency in cycles.
    pub l2_latency: u64,
    /// Enable the L1 stride prefetcher (depth 16).
    pub l1_prefetcher: bool,
    /// Stride prefetcher lookahead depth.
    pub stride_depth: usize,
    /// Enable the L2 AMPM prefetcher.
    pub l2_prefetcher: bool,
    /// AMPM prefetch queue size (Table I: 32).
    pub ampm_queue: usize,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// TLB entries.
    pub tlb_entries: usize,
    /// Page-walk latency in cycles.
    pub tlb_walk_latency: u64,
    /// L1-D MSHR entries (outstanding misses; limits demand memory-level
    /// parallelism on the conventional load path).
    pub l1_mshrs: usize,
    /// L2 MSHR entries (shared by demand misses, prefetches and stream
    /// requests).
    pub l2_mshrs: usize,
    /// L2 requests accepted per cycle (the Streaming Engine brings its own
    /// load + store ports per Table I, so the default is 2).
    pub l2_ports: usize,
    /// Deterministic fault injection; `None` (the default) disables it and
    /// costs nothing on the hot path.
    pub fault: Option<FaultConfig>,
}

impl Default for MemConfig {
    fn default() -> Self {
        Self {
            l1_size: 64 * 1024,
            l1_ways: 4,
            l1_latency: 4,
            l2_size: 256 * 1024,
            l2_ways: 8,
            l2_latency: 13,
            l1_prefetcher: true,
            stride_depth: 16,
            l2_prefetcher: true,
            ampm_queue: 32,
            dram: DramConfig::default(),
            tlb_entries: 48,
            tlb_walk_latency: 20,
            l1_mshrs: 8,
            l2_mshrs: 32,
            l2_ports: 2,
            fault: None,
        }
    }
}

/// Which path a request takes through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Path {
    /// Conventional load/store: L1 → L2 → DRAM, allocating at every level.
    #[default]
    Normal,
    /// Stream directed at the L1 (allocates in L1).
    StreamL1,
    /// Stream directed at the L2 (non-cacheable at L1, allocates in L2) —
    /// the paper's default for streams.
    StreamL2,
    /// Stream directed at memory: non-cacheable at all levels.
    StreamMem,
}

/// A bank of miss-status holding registers: a new miss occupies the
/// earliest-free slot, serializing behind it when all slots are busy. This
/// is what bounds memory-level parallelism on each level's miss path.
#[derive(Debug, Clone)]
pub(crate) struct MshrBank {
    busy_until: Vec<u64>,
}

impl MshrBank {
    pub(crate) fn new(slots: usize) -> Self {
        Self {
            busy_until: vec![0; slots.max(1)],
        }
    }

    /// Reserves a slot at `now`; returns `(slot, start_cycle)`. The bank
    /// always holds at least one slot (see `new`), so the empty case falls
    /// back to slot 0 instead of panicking.
    pub(crate) fn acquire(&mut self, now: u64) -> (usize, u64) {
        let (slot, &t) = self
            .busy_until
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .unwrap_or((0, &0));
        (slot, now.max(t))
    }

    pub(crate) fn release_at(&mut self, slot: usize, when: u64) {
        self.busy_until[slot] = when;
    }
}

/// Aggregated statistics of a hierarchy instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1-D statistics.
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// DRAM traffic.
    pub dram: DramStats,
    /// Demand reads served.
    pub reads: u64,
    /// Demand writes served.
    pub writes: u64,
    /// TLB hits/misses.
    pub tlb_hits: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Per-(requester, serving level) read latency distributions.
    pub profile: ReadProfile,
    /// Snoop-bus coherence traffic. Always zero for a single-core
    /// [`MemSystem`]; the multicore hierarchy ([`SmpMem`](crate::SmpMem))
    /// reports per-core counters here.
    pub snoop: SnoopStats,
}

/// What happened to one demand read: when the data is usable, how long the
/// request waited for a free MSHR slot, and whether DRAM served it. The
/// core uses this to attribute a stalled load to MSHR pressure vs. DRAM
/// queueing vs. plain cache latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Cycle the data is usable (what [`MemSystem::read`] returns).
    pub ready: u64,
    /// Cycles spent waiting for a free L1/L2 MSHR slot.
    pub mshr_wait: u64,
    /// `true` if the line came from DRAM.
    pub from_dram: bool,
    /// `true` if the line was forwarded cache-to-cache from a remote L1
    /// that held it dirty (MOESI owner forwarding). Never set by the
    /// single-core [`MemSystem`].
    pub from_snoop: bool,
}

/// The timing model of the memory hierarchy.
///
/// Timing is *analytic*: an access mutates cache/prefetcher/DRAM state and
/// returns the cycle its data is available; there is no global event queue.
/// Port contention is modelled where it matters for the paper's results —
/// DRAM channel occupancy and the single L2 access port.
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MemConfig,
    l1: Cache,
    l2: Cache,
    dram: Dram,
    stride: StridePrefetcher,
    ampm: AmpmPrefetcher,
    tlb: Tlb,
    /// Next cycle the (single) L2 port is free.
    l2_port_free: u64,
    l1_mshrs: MshrBank,
    l2_mshrs: MshrBank,
    reads: u64,
    writes: u64,
    profile: ReadProfile,
    injector: Option<FaultInjector>,
}

impl MemSystem {
    /// Creates a hierarchy from the configuration.
    pub fn new(cfg: MemConfig) -> Self {
        Self {
            l1: Cache::new("L1-D", cfg.l1_size, cfg.l1_ways),
            l2: Cache::new("L2", cfg.l2_size, cfg.l2_ways),
            dram: Dram::new(cfg.dram),
            stride: StridePrefetcher::new(cfg.stride_depth, 64),
            ampm: AmpmPrefetcher::new(64, cfg.ampm_queue.min(2)),
            tlb: Tlb::new(cfg.tlb_entries, cfg.tlb_walk_latency),
            l2_port_free: 0,
            l1_mshrs: MshrBank::new(cfg.l1_mshrs),
            l2_mshrs: MshrBank::new(cfg.l2_mshrs),
            reads: 0,
            writes: 0,
            profile: ReadProfile::default(),
            injector: cfg.fault.clone().map(FaultInjector::new),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Access to the TLB (for fault injection and stream translation).
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// Translates a virtual address (streams and LSQ both use this). With
    /// fault injection enabled, a page's first touch may raise an injected
    /// translation fault (once per page — the handler maps it).
    pub fn translate(&mut self, vaddr: u64) -> Translation {
        if let Some(inj) = &mut self.injector {
            let page = vaddr / PAGE_SIZE;
            if inj.page_fault_on_first_touch(page) {
                return Translation::Fault { page };
            }
        }
        self.tlb.translate(vaddr)
    }

    /// Does the request for `line` transiently fail at retry `attempt`?
    /// Always `false` without an injector.
    pub fn fault_transient(&mut self, line: u64, attempt: u32) -> bool {
        match &mut self.injector {
            Some(inj) => inj.transient(line, attempt),
            None => false,
        }
    }

    /// Is a response for `line` poisoned at retry `attempt`? The serving
    /// level is derived from the request path and whether DRAM served it.
    pub fn fault_poisoned(&mut self, line: u64, attempt: u32, from_dram: bool, path: Path) -> bool {
        let Some(inj) = &mut self.injector else {
            return false;
        };
        let level = if from_dram {
            FaultLevel::Dram
        } else {
            match path {
                Path::Normal | Path::StreamL1 => FaultLevel::L1,
                Path::StreamL2 | Path::StreamMem => FaultLevel::L2,
            }
        };
        inj.poisoned(line, attempt, level)
    }

    /// Backoff in cycles before retry `attempt` (0 without an injector).
    pub fn fault_backoff(&self, attempt: u32) -> u64 {
        self.injector.as_ref().map_or(0, |inj| inj.backoff(attempt))
    }

    /// Injected-fault counters (zeroes if injection is disabled).
    pub fn fault_stats(&self) -> FaultStats {
        self.injector
            .as_ref()
            .map_or_else(FaultStats::default, |inj| inj.stats())
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1: self.l1.stats(),
            l2: self.l2.stats(),
            dram: self.dram.stats(),
            reads: self.reads,
            writes: self.writes,
            tlb_hits: self.tlb.hits(),
            tlb_misses: self.tlb.misses(),
            profile: self.profile,
            snoop: SnoopStats::default(),
        }
    }

    /// DRAM bus utilization over `cycles` (Fig. 8.D metric).
    pub fn bus_utilization(&self, cycles: u64) -> f64 {
        self.dram.utilization(cycles)
    }

    fn l2_port(&mut self, now: u64) -> u64 {
        // `l2_ports` accesses per cycle: the free cursor advances by a
        // 1/l2_ports fraction, quantized via a sub-cycle counter.
        let start = (self.l2_port_free / self.cfg.l2_ports as u64).max(now);
        self.l2_port_free = (start * self.cfg.l2_ports as u64).max(self.l2_port_free) + 1;
        start
    }

    /// Reads through the L2 (demand or on behalf of L1 fills); returns the
    /// data-ready cycle, filling L2 unless `allocate` is false. The AMPM
    /// prefetcher trains on demand traffic only (`train`): Streaming Engine
    /// requests carry exact pattern knowledge, and prefetching on top of
    /// them creates in-flight interception chains that only slow the stream
    /// down.
    fn l2_read(&mut self, line: u64, now: u64, allocate: bool, train: bool) -> ReadOutcome {
        static DBG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        let dbg = *DBG.get_or_init(|| std::env::var("UVE_MEM_TRACE").is_ok());
        let start = self.l2_port(now);
        let out = match self.l2.access(line, false, start) {
            Access::Hit { ready } => {
                if dbg {
                    eprintln!("l2_read now={now} start={start} HIT line_ready={ready}");
                }
                ReadOutcome {
                    ready: ready.max(start) + self.cfg.l2_latency,
                    mshr_wait: 0,
                    from_dram: false,
                    from_snoop: false,
                }
            }
            Access::Miss => {
                let (slot, miss_start) = self.l2_mshrs.acquire(start);
                let ready = self.dram.read(line, miss_start + self.cfg.l2_latency);
                if dbg {
                    eprintln!("l2_read now={now} start={start} MISS mshr_start={miss_start} ready={ready}");
                }
                self.l2_mshrs.release_at(slot, ready);
                if allocate {
                    if let Some(victim) = self.l2.fill(line, false, ready) {
                        // Writebacks are posted from a write buffer at the
                        // access time; scheduling them at the future fill
                        // time would block younger reads behind phantom
                        // channel occupancy.
                        self.dram.write(victim, start);
                    }
                }
                ReadOutcome {
                    ready,
                    mshr_wait: miss_start - start,
                    from_dram: true,
                    from_snoop: false,
                }
            }
        };
        if self.cfg.l2_prefetcher && train {
            for pf in self.ampm.observe(line) {
                if !self.l2.probe(pf) {
                    let pf_ready = self.dram.read(pf, start + self.cfg.l2_latency);
                    self.profile
                        .record(ReqClass::Prefetch, ServedBy::Dram, pf_ready - start);
                    if let Some(victim) = self.l2.fill_prefetch(pf, pf_ready) {
                        self.dram.write(victim, pf_ready);
                    }
                }
            }
        }
        out
    }

    /// A demand read of the line containing byte address `addr`; like
    /// [`MemSystem::read`] but additionally reports MSHR waiting time and
    /// whether DRAM served the request, for stall attribution.
    pub fn read_explained(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> ReadOutcome {
        self.reads += 1;
        let line = addr / LINE_BYTES;
        let class = if path == Path::Normal {
            ReqClass::Demand
        } else {
            ReqClass::Stream
        };
        match path {
            Path::Normal | Path::StreamL1 => {
                let out = match self.l1.access(line, false, now) {
                    Access::Hit { ready } => {
                        let out = ReadOutcome {
                            ready: ready.max(now) + self.cfg.l1_latency,
                            mshr_wait: 0,
                            from_dram: false,
                            from_snoop: false,
                        };
                        self.profile.record(class, ServedBy::L1, out.ready - now);
                        out
                    }
                    Access::Miss => {
                        let (slot, start) = self.l1_mshrs.acquire(now);
                        let inner = self.l2_read(line, start + self.cfg.l1_latency, true, true);
                        self.l1_mshrs.release_at(slot, inner.ready);
                        if let Some(victim) = self.l1.fill(line, false, inner.ready) {
                            // Dirty L1 eviction: write back into L2.
                            if let Some(v2) = self.l2.fill(victim, true, now) {
                                self.dram.write(v2, now);
                            }
                        }
                        let served = if inner.from_dram {
                            ServedBy::Dram
                        } else {
                            ServedBy::L2
                        };
                        self.profile.record(class, served, inner.ready - now);
                        ReadOutcome {
                            ready: inner.ready,
                            mshr_wait: (start - now) + inner.mshr_wait,
                            from_dram: inner.from_dram,
                            from_snoop: false,
                        }
                    }
                };
                if self.cfg.l1_prefetcher && path == Path::Normal {
                    let reqs = self.stride.observe(pc, addr);
                    for pf in reqs {
                        if !self.l1.probe(pf) {
                            let (slot, start) = self.l1_mshrs.acquire(now);
                            let inner = self.l2_read(pf, start + self.cfg.l1_latency, true, true);
                            self.l1_mshrs.release_at(slot, inner.ready);
                            let served = if inner.from_dram {
                                ServedBy::Dram
                            } else {
                                ServedBy::L2
                            };
                            self.profile
                                .record(ReqClass::Prefetch, served, inner.ready - now);
                            if let Some(victim) = self.l1.fill_prefetch(pf, inner.ready) {
                                if let Some(v2) = self.l2.fill(victim, true, now) {
                                    self.dram.write(v2, now);
                                }
                            }
                        }
                    }
                }
                out
            }
            Path::StreamL2 => {
                // Non-cacheable at L1: straight to the L2, treated there as
                // a normal (cacheable) load; does not train the prefetcher.
                let out = self.l2_read(line, now, true, false);
                let served = if out.from_dram {
                    ServedBy::Dram
                } else {
                    ServedBy::L2
                };
                self.profile.record(class, served, out.ready - now);
                out
            }
            Path::StreamMem => {
                // Non-cacheable at all levels: direct DRAM read, no fills,
                // no pollution.
                let ready = self.dram.read(line, now);
                self.profile.record(class, ServedBy::Dram, ready - now);
                ReadOutcome {
                    ready,
                    mshr_wait: 0,
                    from_dram: true,
                    from_snoop: false,
                }
            }
        }
    }

    /// A demand read of the line containing byte address `addr`, issued by
    /// instruction `pc` at cycle `now` along `path`. Returns the cycle the
    /// data is usable.
    pub fn read(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> u64 {
        self.read_explained(addr, pc, now, path).ready
    }

    /// A demand write of the line containing `addr` (write-allocate at L1
    /// for `Normal`/`StreamL1`; L2 for `StreamL2`; DRAM for `StreamMem`).
    /// Returns the cycle the write is accepted.
    pub fn write(&mut self, addr: u64, _pc: u64, now: u64, path: Path) -> u64 {
        self.writes += 1;
        let line = addr / LINE_BYTES;
        match path {
            Path::Normal | Path::StreamL1 => {
                match self.l1.access(line, true, now) {
                    Access::Hit { ready } => ready.max(now) + 1,
                    Access::Miss => {
                        // Write-allocate: fetch the line, then dirty it.
                        let (slot, start) = self.l1_mshrs.acquire(now);
                        let inner = self.l2_read(line, start + self.cfg.l1_latency, true, true);
                        self.l1_mshrs.release_at(slot, inner.ready);
                        let served = if inner.from_dram {
                            ServedBy::Dram
                        } else {
                            ServedBy::L2
                        };
                        self.profile
                            .record(ReqClass::WriteAlloc, served, inner.ready - now);
                        if let Some(victim) = self.l1.fill(line, true, inner.ready) {
                            if let Some(v2) = self.l2.fill(victim, true, now) {
                                self.dram.write(v2, now);
                            }
                        }
                        inner.ready
                    }
                }
            }
            Path::StreamL2 => {
                let start = self.l2_port(now);
                match self.l2.access(line, true, start) {
                    Access::Hit { ready } => ready.max(start) + 1,
                    Access::Miss => {
                        let (slot, miss_start) = self.l2_mshrs.acquire(start);
                        let ready = self.dram.read(line, miss_start + self.cfg.l2_latency);
                        self.profile
                            .record(ReqClass::WriteAlloc, ServedBy::Dram, ready - now);
                        self.l2_mshrs.release_at(slot, ready);
                        if let Some(victim) = self.l2.fill(line, true, ready) {
                            self.dram.write(victim, start);
                        }
                        ready
                    }
                }
            }
            Path::StreamMem => self.dram.write(line, now),
        }
    }

    /// A full-line write: the producer overwrites the entire line, so no
    /// allocate-read is needed on a miss (the Streaming Engine knows the
    /// exact store pattern from the descriptor, one of UVE's advantages
    /// over conventional write-allocate stores). Returns the acceptance
    /// cycle.
    pub fn write_full_line(&mut self, addr: u64, _pc: u64, now: u64, path: Path) -> u64 {
        self.writes += 1;
        let line = addr / LINE_BYTES;
        match path {
            Path::Normal | Path::StreamL1 => match self.l1.access(line, true, now) {
                Access::Hit { ready } => ready.max(now) + 1,
                Access::Miss => {
                    if let Some(victim) = self.l1.fill(line, true, now) {
                        if let Some(v2) = self.l2.fill(victim, true, now) {
                            self.dram.write(v2, now);
                        }
                    }
                    now + 1
                }
            },
            Path::StreamL2 => {
                let start = self.l2_port(now);
                match self.l2.access(line, true, start) {
                    Access::Hit { ready } => ready.max(start) + 1,
                    Access::Miss => {
                        if let Some(victim) = self.l2.fill(line, true, start) {
                            self.dram.write(victim, start);
                        }
                        start + 1
                    }
                }
            }
            Path::StreamMem => self.dram.write(line, now),
        }
    }

    /// Flushes dirty cached state to DRAM, accounting the write traffic at
    /// cycle `now`. Call at the end of a run so bus statistics include
    /// resident dirty lines (stores the kernel produced but never evicted).
    pub fn drain_dirty(&mut self, _now: u64) {
        // Timing-model caches do not enumerate dirty lines publicly; traffic
        // from unevicted dirty lines is intentionally *not* charged, which
        // matches how a finite measurement window sees a writeback cache.
    }

    /// Resets traffic statistics and time cursors while keeping cache,
    /// prefetcher and TLB *state* — the warm-measurement hook: replaying a
    /// trace after a priming run models steady-state behaviour.
    pub fn reset_stats(&mut self) {
        self.dram.reset();
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.tlb.reset_stats();
        self.l2_port_free = 0;
        self.l1_mshrs = MshrBank::new(self.cfg.l1_mshrs);
        self.l2_mshrs = MshrBank::new(self.cfg.l2_mshrs);
        self.reads = 0;
        self.writes = 0;
        self.profile = ReadProfile::default();
        if let Some(inj) = &mut self.injector {
            // Counters reset; the handled-page set survives — a page
            // mapped in the priming pass stays mapped in the warm pass.
            inj.reset_stats();
        }
    }

    /// Peak DRAM bandwidth in bytes/cycle.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.dram.peak_bytes_per_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_pf_cfg() -> MemConfig {
        MemConfig {
            l1_prefetcher: false,
            l2_prefetcher: false,
            ..MemConfig::default()
        }
    }

    #[test]
    fn first_read_misses_everywhere() {
        let mut m = MemSystem::new(no_pf_cfg());
        let t = m.read(0x1000, 1, 0, Path::Normal);
        assert!(t >= m.config().dram.latency);
        // Second read: L1 hit.
        let t2 = m.read(0x1000, 1, t, Path::Normal);
        assert_eq!(t2, t + m.config().l1_latency);
    }

    #[test]
    fn l2_hit_after_l1_eviction_path() {
        let mut m = MemSystem::new(no_pf_cfg());
        m.read(0x1000, 1, 0, Path::StreamL2); // fills only L2
        let t = m.read(0x1000, 1, 1000, Path::Normal); // L1 miss, L2 hit
        assert!(t < 1000 + m.config().dram.latency);
        assert!(t >= 1000 + m.config().l2_latency);
    }

    #[test]
    fn stream_mem_does_not_pollute() {
        let mut m = MemSystem::new(no_pf_cfg());
        m.read(0x1000, 1, 0, Path::StreamMem);
        let s = m.stats();
        assert_eq!(s.l1.accesses(), 0);
        assert_eq!(s.l2.accesses(), 0);
        assert_eq!(s.dram.reads, 1);
    }

    #[test]
    fn stream_l2_skips_l1() {
        let mut m = MemSystem::new(no_pf_cfg());
        m.read(0x1000, 1, 0, Path::StreamL2);
        assert_eq!(m.stats().l1.accesses(), 0);
        assert_eq!(m.stats().l2.accesses(), 1);
    }

    #[test]
    fn stride_prefetcher_hides_latency() {
        let mut m = MemSystem::new(MemConfig {
            l2_prefetcher: false,
            ..MemConfig::default()
        });
        // Walk sequential lines from one PC; after training, later reads
        // should be L1 hits (possibly waiting on in-flight fills).
        let mut now = 0;
        for i in 0..64u64 {
            now = m.read(0x10_0000 + i * 64, 42, now, Path::Normal);
        }
        let s = m.stats();
        assert!(s.l1.prefetch_fills > 0);
        assert!(s.l1.hits > 0, "prefetches should convert misses to hits");
    }

    #[test]
    fn writes_count_traffic() {
        let mut m = MemSystem::new(no_pf_cfg());
        m.write(0x2000, 1, 0, Path::Normal);
        let s = m.stats();
        assert_eq!(s.writes, 1);
        // Write-allocate triggered a DRAM read of the line.
        assert_eq!(s.dram.reads, 1);
    }

    #[test]
    fn dirty_l2_eviction_writes_dram() {
        // Tiny L2 via custom config to force evictions.
        let cfg = MemConfig {
            l1_size: 1024,
            l1_ways: 2,
            l2_size: 2048,
            l2_ways: 2,
            l1_prefetcher: false,
            l2_prefetcher: false,
            ..MemConfig::default()
        };
        let mut m = MemSystem::new(cfg);
        let mut now = 0;
        // Dirty many L2 lines via StreamL2 writes, then stream more to evict.
        for i in 0..128u64 {
            now = m.write(i * 64, 1, now, Path::StreamL2);
        }
        assert!(m.stats().dram.writes > 0);
    }

    /// Every DRAM read must be attributed to exactly one `(class, Dram)`
    /// histogram, and every demand/stream read records exactly one sample.
    fn assert_profile_conserved(m: &MemSystem) {
        let s = m.stats();
        assert_eq!(s.profile.served_count(ServedBy::Dram), s.dram.reads);
        assert_eq!(
            s.profile.class_count(ReqClass::Demand) + s.profile.class_count(ReqClass::Stream),
            s.reads
        );
        for class in ReqClass::ALL {
            for served in ServedBy::ALL {
                let h = s.profile.get(class, served);
                assert_eq!(h.bucket_total(), h.count);
            }
        }
    }

    #[test]
    fn profile_accounts_every_dram_read() {
        let mut m = MemSystem::new(MemConfig::default()); // prefetchers on
        let mut now = 0;
        for i in 0..64u64 {
            now = m.read(0x10_0000 + i * 64, 42, now, Path::Normal);
            now = m.write(0x20_0000 + i * 64, 43, now, Path::Normal);
            m.read(0x30_0000 + i * 64, 44, now, Path::StreamL2);
            m.read(0x40_0000 + i * 64, 45, now, Path::StreamMem);
            m.write(0x50_0000 + i * 64, 46, now, Path::StreamL2);
        }
        assert_profile_conserved(&m);
        let s = m.stats();
        assert!(s.profile.get(ReqClass::Prefetch, ServedBy::Dram).count > 0);
        assert!(s.profile.class_count(ReqClass::WriteAlloc) > 0);
        assert!(s.profile.get(ReqClass::Stream, ServedBy::Dram).count >= 64);
    }

    #[test]
    fn read_explained_matches_read() {
        let mut a = MemSystem::new(no_pf_cfg());
        let mut b = MemSystem::new(no_pf_cfg());
        for (i, path) in [Path::Normal, Path::StreamL2, Path::StreamMem, Path::Normal]
            .into_iter()
            .enumerate()
        {
            let addr = 0x8000 + i as u64 * 64;
            assert_eq!(
                a.read(addr, 1, 0, path),
                b.read_explained(addr, 1, 0, path).ready
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn reset_stats_zeroes_tlb_and_profile() {
        let mut m = MemSystem::new(no_pf_cfg());
        m.translate(0x1000);
        m.translate(0x1000);
        m.read(0x1000, 1, 0, Path::Normal);
        let s = m.stats();
        assert_eq!((s.tlb_hits, s.tlb_misses), (1, 1));
        assert!(s.profile.total_count() > 0);
        m.reset_stats();
        let s = m.stats();
        assert_eq!((s.tlb_hits, s.tlb_misses), (0, 0));
        assert_eq!(s.profile.total_count(), 0);
        // Warm state survives: the translation is still cached.
        m.translate(0x1000);
        assert_eq!((m.stats().tlb_hits, m.stats().tlb_misses), (1, 0));
    }

    #[test]
    fn injected_faults_are_deterministic_and_once_per_page() {
        let cfg = MemConfig {
            fault: Some(crate::FaultConfig {
                tlb_fault_rate: 2,
                ..crate::FaultConfig::hostile(11)
            }),
            ..no_pf_cfg()
        };
        let mut a = MemSystem::new(cfg.clone());
        let mut b = MemSystem::new(cfg);
        let pages: Vec<u64> = (0..64).collect();
        let fa: Vec<bool> = pages
            .iter()
            .map(|p| matches!(a.translate(p * 4096), Translation::Fault { .. }))
            .collect();
        let fb: Vec<bool> = pages
            .iter()
            .rev()
            .map(|p| matches!(b.translate(p * 4096), Translation::Fault { .. }))
            .collect();
        assert_eq!(fa, fb.into_iter().rev().collect::<Vec<_>>());
        assert!(fa.iter().any(|&x| x), "rate 2 over 64 pages must fire");
        // Second touch of every page succeeds — the fault was handled.
        for p in &pages {
            assert!(matches!(a.translate(p * 4096), Translation::Ok { .. }));
        }
        assert_eq!(
            a.fault_stats().injected_page_faults,
            fa.iter().filter(|&&x| x).count() as u64
        );
    }

    #[test]
    fn no_injector_means_no_faults() {
        let mut m = MemSystem::new(no_pf_cfg());
        assert!(!m.fault_transient(1, 0));
        assert!(!m.fault_poisoned(1, 0, true, Path::StreamL2));
        assert_eq!(m.fault_backoff(3), 0);
        assert_eq!(m.fault_stats(), crate::FaultStats::default());
    }

    #[test]
    fn translation_goes_through_tlb() {
        let mut m = MemSystem::new(no_pf_cfg());
        m.tlb_mut().mark_faulting(0x7000);
        assert!(matches!(
            m.translate(0x7004),
            Translation::Fault { page: 7 }
        ));
        assert!(matches!(m.translate(0x1000), Translation::Ok { .. }));
    }
}
