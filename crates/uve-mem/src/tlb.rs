//! Address translation: a small fully-associative TLB over an
//! identity-mapped page table with page-fault injection.
//!
//! The Streaming Engine performs virtual-to-physical translation through
//! this TLB before issuing requests (paper Fig. 7); faulting elements are
//! flagged and handled at commit, allowing streams to prefetch safely across
//! page boundaries (architectural opportunity A2).

use crate::memory::PAGE_SIZE;
use std::collections::HashSet;

/// Result of a translation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Translation {
    /// Translation succeeded.
    Ok {
        /// Physical address.
        paddr: u64,
        /// Additional cycles spent (0 on a TLB hit, the walk latency on a
        /// miss).
        extra_cycles: u64,
    },
    /// The page is not mapped; the access faults.
    Fault {
        /// Faulting virtual page number.
        page: u64,
    },
}

/// A fully-associative TLB with LRU replacement over an identity page table.
///
/// All pages are considered mapped unless explicitly marked faulting with
/// [`Tlb::mark_faulting`], which lets tests and the emulator exercise the
/// paper's page-fault handling path.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page, lru)
    capacity: usize,
    walk_latency: u64,
    lru_clock: u64,
    faulting: HashSet<u64>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries and the given page-walk latency
    /// in cycles.
    pub fn new(capacity: usize, walk_latency: u64) -> Self {
        Self {
            entries: Vec::new(),
            capacity: capacity.max(1),
            walk_latency,
            lru_clock: 0,
            faulting: HashSet::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Marks a virtual page (containing `vaddr`) as unmapped/faulting.
    pub fn mark_faulting(&mut self, vaddr: u64) {
        self.faulting.insert(vaddr / PAGE_SIZE);
    }

    /// Clears a fault marking (e.g. after the OS maps the page).
    pub fn clear_fault(&mut self, vaddr: u64) {
        self.faulting.remove(&(vaddr / PAGE_SIZE));
    }

    /// TLB hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// TLB misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Zeroes the hit/miss counters while keeping the cached translations —
    /// the warm-measurement hook: a replayed trace starts with a primed TLB
    /// but freshly zeroed statistics.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Translates `vaddr`, updating TLB state.
    pub fn translate(&mut self, vaddr: u64) -> Translation {
        let page = vaddr / PAGE_SIZE;
        if self.faulting.contains(&page) {
            return Translation::Fault { page };
        }
        self.lru_clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.lru_clock;
            self.hits += 1;
            return Translation::Ok {
                paddr: vaddr,
                extra_cycles: 0,
            };
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            // `entries` is non-empty here (`len >= capacity >= 1`); fall
            // back to evicting slot 0 rather than panicking.
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map_or(0, |(i, _)| i);
            self.entries.swap_remove(victim);
        }
        self.entries.push((page, self.lru_clock));
        Translation::Ok {
            paddr: vaddr,
            extra_cycles: self.walk_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4, 20);
        assert_eq!(
            t.translate(0x1000),
            Translation::Ok {
                paddr: 0x1000,
                extra_cycles: 20
            }
        );
        assert_eq!(
            t.translate(0x1008),
            Translation::Ok {
                paddr: 0x1008,
                extra_cycles: 0
            }
        );
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_replacement() {
        let mut t = Tlb::new(2, 20);
        t.translate(0);
        t.translate(PAGE_SIZE);
        t.translate(0); // refresh page 0
        t.translate(2 * PAGE_SIZE); // evicts page 1
        assert!(matches!(
            t.translate(0),
            Translation::Ok {
                extra_cycles: 0,
                ..
            }
        ));
        assert!(matches!(
            t.translate(PAGE_SIZE),
            Translation::Ok {
                extra_cycles: 20,
                ..
            }
        ));
    }

    #[test]
    fn reset_stats_keeps_entries() {
        let mut t = Tlb::new(4, 20);
        t.translate(0x1000);
        t.translate(0x1000);
        assert_eq!((t.hits(), t.misses()), (1, 1));
        t.reset_stats();
        assert_eq!((t.hits(), t.misses()), (0, 0));
        // The entry survives the reset: the next translation is a hit.
        assert!(matches!(
            t.translate(0x1000),
            Translation::Ok {
                extra_cycles: 0,
                ..
            }
        ));
        assert_eq!((t.hits(), t.misses()), (1, 0));
    }

    #[test]
    fn faulting_pages() {
        let mut t = Tlb::new(4, 20);
        t.mark_faulting(0x5000);
        assert_eq!(t.translate(0x5fff), Translation::Fault { page: 5 });
        t.clear_fault(0x5000);
        assert!(matches!(t.translate(0x5000), Translation::Ok { .. }));
    }
}
