//! Sparse paged functional memory.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use uve_stream::{ElemWidth, StreamMemory};

/// Page size of the simulated virtual memory, in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Multiplicative hasher for page numbers. Page lookups sit on the hottest
/// path of the emulator (every load/store and every stream element goes
/// through one), where SipHash costs more than the access itself; page
/// numbers are small dense integers, so a single odd-constant multiply
/// (Fibonacci hashing) spreads them perfectly well. Deterministic, so map
/// behaviour never varies between runs (iteration order is never observed:
/// [`Memory::content_hash`] sorts pages first).
#[derive(Debug, Clone, Copy, Default)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, n: u64) {
        // 2^64 / phi, the classic Fibonacci-hashing constant.
        self.0 = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type Page = Box<[u8; PAGE_SIZE as usize]>;
type PageMap = HashMap<u64, Page, BuildHasherDefault<PageHasher>>;

/// Page numbers below this go through the direct (vector-indexed) table;
/// higher ones through the hash map. 1 GiB of address space — everything
/// the bump allocator ([`Memory::alloc`]) ever hands out — resolves with a
/// single predictable index instead of a hash probe. The direct table grows
/// lazily to the highest page touched, so small memories stay small.
const DIRECT_PAGES: u64 = (1 << 30) / PAGE_SIZE;

/// Byte-addressable sparse memory backed by 4 KiB pages.
///
/// Pages are allocated on first touch; reads of untouched memory return
/// zero. All multi-byte accessors are little-endian and may straddle page
/// boundaries.
///
/// ```rust
/// use uve_mem::Memory;
///
/// let mut mem = Memory::new();
/// mem.write_f32(0x1000, 3.5);
/// assert_eq!(mem.read_f32(0x1000), 3.5);
/// assert_eq!(mem.read_u32(0x2000), 0); // untouched
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    /// Pages below [`DIRECT_PAGES`], indexed by page number.
    direct: Vec<Option<Page>>,
    /// Pages at or above [`DIRECT_PAGES`].
    far: PageMap,
    alloc_cursor: u64,
}

/// Base address of the bump allocator used by [`Memory::alloc`].
const ALLOC_BASE: u64 = 0x10_0000;

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self {
            direct: Vec::new(),
            far: PageMap::default(),
            alloc_cursor: ALLOC_BASE,
        }
    }

    /// The page holding `num`, if touched.
    #[inline]
    fn page(&self, num: u64) -> Option<&Page> {
        if num < DIRECT_PAGES {
            self.direct.get(num as usize)?.as_ref()
        } else {
            self.far.get(&num)
        }
    }

    /// The page holding `num`, allocated on first touch.
    #[inline]
    fn page_mut(&mut self, num: u64) -> &mut Page {
        if num < DIRECT_PAGES {
            let i = num as usize;
            if i >= self.direct.len() {
                self.direct.resize_with(i + 1, || None);
            }
            self.direct[i].get_or_insert_with(|| Box::new([0; PAGE_SIZE as usize]))
        } else {
            self.far
                .entry(num)
                .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]))
        }
    }

    /// Number of pages touched so far.
    pub fn touched_pages(&self) -> usize {
        self.direct.iter().filter(|p| p.is_some()).count() + self.far.len()
    }

    /// Bump-allocates `bytes` bytes aligned to `align` (a power of two) and
    /// returns the base address. Convenient for placing kernel arrays.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.alloc_cursor + align - 1) & !(align - 1);
        self.alloc_cursor = base + bytes;
        base
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr / PAGE_SIZE) {
            Some(p) => p[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.page_mut(addr / PAGE_SIZE)[(addr % PAGE_SIZE) as usize] = v;
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    #[inline]
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        let off = (addr % PAGE_SIZE) as usize;
        if off + buf.len() <= PAGE_SIZE as usize {
            // Single-page access: one page lookup for the whole value. This
            // is the overwhelmingly common case and the hot path of every
            // emulated load.
            match self.page(addr / PAGE_SIZE) {
                Some(p) => buf.copy_from_slice(&p[off..off + buf.len()]),
                None => buf.fill(0),
            }
            return;
        }
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
    }

    /// Writes `buf` starting at `addr`.
    #[inline]
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) {
        let off = (addr % PAGE_SIZE) as usize;
        if off + buf.len() <= PAGE_SIZE as usize {
            let page = self.page_mut(addr / PAGE_SIZE);
            page[off..off + buf.len()].copy_from_slice(buf);
            return;
        }
        for (i, b) in buf.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads a little-endian `u16`.
    #[inline]
    pub fn read_u16(&self, addr: u64) -> u16 {
        let mut b = [0; 2];
        self.read_bytes(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut b = [0; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u16`.
    #[inline]
    pub fn write_u16(&mut self, addr: u64, v: u16) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads an `f32`.
    #[inline]
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32`.
    #[inline]
    pub fn write_f32(&mut self, addr: u64, v: f32) {
        self.write_u32(addr, v.to_bits());
    }

    /// Reads an `f64`.
    #[inline]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    #[inline]
    pub fn write_f64(&mut self, addr: u64, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Reads a sign-extended value of the given element width.
    #[inline]
    pub fn read_elem(&self, addr: u64, width: ElemWidth) -> i64 {
        match width {
            ElemWidth::Byte => self.read_u8(addr) as i8 as i64,
            ElemWidth::Half => self.read_u16(addr) as i16 as i64,
            ElemWidth::Word => self.read_u32(addr) as i32 as i64,
            ElemWidth::Double => self.read_u64(addr) as i64,
        }
    }

    /// Writes the low `width` bytes of `v`.
    #[inline]
    pub fn write_elem(&mut self, addr: u64, width: ElemWidth, v: i64) {
        match width {
            ElemWidth::Byte => self.write_u8(addr, v as u8),
            ElemWidth::Half => self.write_u16(addr, v as u16),
            ElemWidth::Word => self.write_u32(addr, v as u32),
            ElemWidth::Double => self.write_u64(addr, v as u64),
        }
    }

    /// Writes an `f32` slice contiguously starting at `addr`.
    pub fn write_f32_slice(&mut self, addr: u64, data: &[f32]) {
        for (i, v) in data.iter().enumerate() {
            self.write_f32(addr + 4 * i as u64, *v);
        }
    }

    /// Reads `n` contiguous `f32` values starting at `addr`.
    pub fn read_f32_slice(&self, addr: u64, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u64)).collect()
    }

    /// Writes an `f64` slice contiguously starting at `addr`.
    pub fn write_f64_slice(&mut self, addr: u64, data: &[f64]) {
        for (i, v) in data.iter().enumerate() {
            self.write_f64(addr + 8 * i as u64, *v);
        }
    }

    /// Reads `n` contiguous `f64` values starting at `addr`.
    pub fn read_f64_slice(&self, addr: u64, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.read_f64(addr + 8 * i as u64)).collect()
    }

    /// Writes an `i32` slice contiguously starting at `addr`.
    pub fn write_i32_slice(&mut self, addr: u64, data: &[i32]) {
        for (i, v) in data.iter().enumerate() {
            self.write_u32(addr + 4 * i as u64, *v as u32);
        }
    }

    /// Reads `n` contiguous `i32` values starting at `addr`.
    pub fn read_i32_slice(&self, addr: u64, n: usize) -> Vec<i32> {
        (0..n)
            .map(|i| self.read_u32(addr + 4 * i as u64) as i32)
            .collect()
    }

    /// A deterministic digest of the full memory contents (pages visited
    /// in sorted order, so the hash is independent of touch order). Two
    /// memories with identical byte contents hash equal; an all-zero page
    /// hashes like an untouched one, so allocation noise doesn't matter.
    pub fn content_hash(&self) -> u64 {
        // Direct pages are stored in page-number order already; far pages
        // (all numerically above them) are sorted before hashing, keeping
        // the walk globally ordered.
        let direct = self
            .direct
            .iter()
            .enumerate()
            .filter_map(|(n, p)| Some((n as u64, p.as_ref()?)));
        let mut far: Vec<(u64, &Page)> = self.far.iter().map(|(n, p)| (*n, p)).collect();
        far.sort_by_key(|(n, _)| *n);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for (num, data) in direct.chain(far) {
            if data.iter().all(|&b| b == 0) {
                continue;
            }
            h ^= num;
            h = h.wrapping_mul(0x100_0000_01b3);
            for &b in data.iter() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }
}

impl StreamMemory for Memory {
    fn load(&self, addr: u64, width: ElemWidth) -> i64 {
        self.read_elem(addr, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0xdead_beef), 0);
        assert_eq!(m.touched_pages(), 0);
    }

    #[test]
    fn rw_roundtrip_all_widths() {
        let mut m = Memory::new();
        m.write_u8(10, 0xab);
        m.write_u16(20, 0xbeef);
        m.write_u32(30, 0xdead_beef);
        m.write_u64(40, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(20), 0xbeef);
        assert_eq!(m.read_u32(30), 0xdead_beef);
        assert_eq!(m.read_u64(40), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 2;
        m.write_u32(addr, 0x1122_3344);
        assert_eq!(m.read_u32(addr), 0x1122_3344);
        assert_eq!(m.touched_pages(), 2);
    }

    #[test]
    fn float_roundtrip() {
        let mut m = Memory::new();
        m.write_f32(0, -1.25);
        m.write_f64(8, std::f64::consts::PI);
        assert_eq!(m.read_f32(0), -1.25);
        assert_eq!(m.read_f64(8), std::f64::consts::PI);
    }

    #[test]
    fn elem_sign_extension() {
        let mut m = Memory::new();
        m.write_u8(0, 0xff);
        m.write_u32(4, 0xffff_ffff);
        assert_eq!(m.read_elem(0, ElemWidth::Byte), -1);
        assert_eq!(m.read_elem(4, ElemWidth::Word), -1);
        assert_eq!(m.read_elem(4, ElemWidth::Half), -1);
    }

    #[test]
    fn alloc_alignment_and_disjointness() {
        let mut m = Memory::new();
        let a = m.alloc(100, 64);
        let b = m.alloc(10, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
    }

    #[test]
    fn slice_helpers() {
        let mut m = Memory::new();
        let data = vec![1.0f32, 2.0, 3.0];
        m.write_f32_slice(0x100, &data);
        assert_eq!(m.read_f32_slice(0x100, 3), data);
        let ints = vec![-1i32, 7, 42];
        m.write_i32_slice(0x200, &ints);
        assert_eq!(m.read_i32_slice(0x200, 3), ints);
    }

    #[test]
    fn content_hash_reflects_bytes_not_touch_order() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.write_u32(0x1000, 7);
        a.write_u32(0x9000, 9);
        b.write_u32(0x9000, 9);
        b.write_u32(0x1000, 7);
        assert_eq!(a.content_hash(), b.content_hash());
        b.write_u8(0x1000, 8);
        assert_ne!(a.content_hash(), b.content_hash());
        // Touching a page with zeroes doesn't change the digest.
        let empty = Memory::new().content_hash();
        let mut c = Memory::new();
        c.write_u8(0x5000, 0);
        assert_eq!(c.content_hash(), empty);
    }

    #[test]
    fn stream_memory_impl() {
        let mut m = Memory::new();
        m.write_u32(0, 1234);
        assert_eq!(StreamMemory::load(&m, 0, ElemWidth::Word), 1234);
    }
}
