//! Sparse paged functional memory.

use std::collections::HashMap;
use uve_stream::{ElemWidth, StreamMemory};

/// Page size of the simulated virtual memory, in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Byte-addressable sparse memory backed by 4 KiB pages.
///
/// Pages are allocated on first touch; reads of untouched memory return
/// zero. All multi-byte accessors are little-endian and may straddle page
/// boundaries.
///
/// ```rust
/// use uve_mem::Memory;
///
/// let mut mem = Memory::new();
/// mem.write_f32(0x1000, 3.5);
/// assert_eq!(mem.read_f32(0x1000), 3.5);
/// assert_eq!(mem.read_u32(0x2000), 0); // untouched
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
    alloc_cursor: u64,
}

/// Base address of the bump allocator used by [`Memory::alloc`].
const ALLOC_BASE: u64 = 0x10_0000;

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self {
            pages: HashMap::new(),
            alloc_cursor: ALLOC_BASE,
        }
    }

    /// Number of pages touched so far.
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }

    /// Bump-allocates `bytes` bytes aligned to `align` (a power of two) and
    /// returns the base address. Convenient for placing kernel arrays.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.alloc_cursor + align - 1) & !(align - 1);
        self.alloc_cursor = base + bytes;
        base
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr / PAGE_SIZE)) {
            Some(p) => p[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let page = self
            .pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
        page[(addr % PAGE_SIZE) as usize] = v;
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
    }

    /// Writes `buf` starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) {
        for (i, b) in buf.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        let mut b = [0; 2];
        self.read_bytes(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut b = [0; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, v: u16) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads an `f32`.
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32`.
    pub fn write_f32(&mut self, addr: u64, v: f32) {
        self.write_u32(addr, v.to_bits());
    }

    /// Reads an `f64`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    pub fn write_f64(&mut self, addr: u64, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Reads a sign-extended value of the given element width.
    pub fn read_elem(&self, addr: u64, width: ElemWidth) -> i64 {
        match width {
            ElemWidth::Byte => self.read_u8(addr) as i8 as i64,
            ElemWidth::Half => self.read_u16(addr) as i16 as i64,
            ElemWidth::Word => self.read_u32(addr) as i32 as i64,
            ElemWidth::Double => self.read_u64(addr) as i64,
        }
    }

    /// Writes the low `width` bytes of `v`.
    pub fn write_elem(&mut self, addr: u64, width: ElemWidth, v: i64) {
        match width {
            ElemWidth::Byte => self.write_u8(addr, v as u8),
            ElemWidth::Half => self.write_u16(addr, v as u16),
            ElemWidth::Word => self.write_u32(addr, v as u32),
            ElemWidth::Double => self.write_u64(addr, v as u64),
        }
    }

    /// Writes an `f32` slice contiguously starting at `addr`.
    pub fn write_f32_slice(&mut self, addr: u64, data: &[f32]) {
        for (i, v) in data.iter().enumerate() {
            self.write_f32(addr + 4 * i as u64, *v);
        }
    }

    /// Reads `n` contiguous `f32` values starting at `addr`.
    pub fn read_f32_slice(&self, addr: u64, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u64)).collect()
    }

    /// Writes an `f64` slice contiguously starting at `addr`.
    pub fn write_f64_slice(&mut self, addr: u64, data: &[f64]) {
        for (i, v) in data.iter().enumerate() {
            self.write_f64(addr + 8 * i as u64, *v);
        }
    }

    /// Reads `n` contiguous `f64` values starting at `addr`.
    pub fn read_f64_slice(&self, addr: u64, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.read_f64(addr + 8 * i as u64)).collect()
    }

    /// Writes an `i32` slice contiguously starting at `addr`.
    pub fn write_i32_slice(&mut self, addr: u64, data: &[i32]) {
        for (i, v) in data.iter().enumerate() {
            self.write_u32(addr + 4 * i as u64, *v as u32);
        }
    }

    /// Reads `n` contiguous `i32` values starting at `addr`.
    pub fn read_i32_slice(&self, addr: u64, n: usize) -> Vec<i32> {
        (0..n)
            .map(|i| self.read_u32(addr + 4 * i as u64) as i32)
            .collect()
    }

    /// A deterministic digest of the full memory contents (pages visited
    /// in sorted order, so the hash is independent of touch order). Two
    /// memories with identical byte contents hash equal; an all-zero page
    /// hashes like an untouched one, so allocation noise doesn't matter.
    pub fn content_hash(&self) -> u64 {
        let mut pages: Vec<(&u64, &Box<[u8; PAGE_SIZE as usize]>)> = self.pages.iter().collect();
        pages.sort_by_key(|(n, _)| **n);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for (num, data) in pages {
            if data.iter().all(|&b| b == 0) {
                continue;
            }
            h ^= *num;
            h = h.wrapping_mul(0x100_0000_01b3);
            for &b in data.iter() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }
}

impl StreamMemory for Memory {
    fn load(&self, addr: u64, width: ElemWidth) -> i64 {
        self.read_elem(addr, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0xdead_beef), 0);
        assert_eq!(m.touched_pages(), 0);
    }

    #[test]
    fn rw_roundtrip_all_widths() {
        let mut m = Memory::new();
        m.write_u8(10, 0xab);
        m.write_u16(20, 0xbeef);
        m.write_u32(30, 0xdead_beef);
        m.write_u64(40, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(20), 0xbeef);
        assert_eq!(m.read_u32(30), 0xdead_beef);
        assert_eq!(m.read_u64(40), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 2;
        m.write_u32(addr, 0x1122_3344);
        assert_eq!(m.read_u32(addr), 0x1122_3344);
        assert_eq!(m.touched_pages(), 2);
    }

    #[test]
    fn float_roundtrip() {
        let mut m = Memory::new();
        m.write_f32(0, -1.25);
        m.write_f64(8, std::f64::consts::PI);
        assert_eq!(m.read_f32(0), -1.25);
        assert_eq!(m.read_f64(8), std::f64::consts::PI);
    }

    #[test]
    fn elem_sign_extension() {
        let mut m = Memory::new();
        m.write_u8(0, 0xff);
        m.write_u32(4, 0xffff_ffff);
        assert_eq!(m.read_elem(0, ElemWidth::Byte), -1);
        assert_eq!(m.read_elem(4, ElemWidth::Word), -1);
        assert_eq!(m.read_elem(4, ElemWidth::Half), -1);
    }

    #[test]
    fn alloc_alignment_and_disjointness() {
        let mut m = Memory::new();
        let a = m.alloc(100, 64);
        let b = m.alloc(10, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
    }

    #[test]
    fn slice_helpers() {
        let mut m = Memory::new();
        let data = vec![1.0f32, 2.0, 3.0];
        m.write_f32_slice(0x100, &data);
        assert_eq!(m.read_f32_slice(0x100, 3), data);
        let ints = vec![-1i32, 7, 42];
        m.write_i32_slice(0x200, &ints);
        assert_eq!(m.read_i32_slice(0x200, 3), ints);
    }

    #[test]
    fn content_hash_reflects_bytes_not_touch_order() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.write_u32(0x1000, 7);
        a.write_u32(0x9000, 9);
        b.write_u32(0x9000, 9);
        b.write_u32(0x1000, 7);
        assert_eq!(a.content_hash(), b.content_hash());
        b.write_u8(0x1000, 8);
        assert_ne!(a.content_hash(), b.content_hash());
        // Touching a page with zeroes doesn't change the digest.
        let empty = Memory::new().content_hash();
        let mut c = Memory::new();
        c.write_u8(0x5000, 0);
        assert_eq!(c.content_hash(), empty);
    }

    #[test]
    fn stream_memory_impl() {
        let mut m = Memory::new();
        m.write_u32(0, 1234);
        assert_eq!(StreamMemory::load(&m, 0, ElemWidth::Word), 1234);
    }
}
