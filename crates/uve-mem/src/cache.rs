//! Set-associative cache timing model with MOESI line states and LRU
//! replacement.

/// Cache line size in bytes (fixed at 64 B throughout the model, matching
/// the 512-bit vector length).
pub const LINE_BYTES: u64 = 64;

/// MOESI coherence state of a cache line.
///
/// The evaluation runs a single core, so `Owned` never arises from sharing,
/// but the full state machine is modelled so the snooping hooks are
/// exercised (paper Sec. IV-A, *Memory Coherence*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MoesiState {
    /// Modified: dirty, exclusive.
    Modified,
    /// Owned: dirty, shared.
    Owned,
    /// Exclusive: clean, exclusive.
    Exclusive,
    /// Shared: clean, shared.
    Shared,
    /// Invalid.
    #[default]
    Invalid,
}

impl MoesiState {
    /// `true` if the line holds data that must be written back on eviction.
    pub fn is_dirty(self) -> bool {
        matches!(self, MoesiState::Modified | MoesiState::Owned)
    }

    /// `true` if the line holds valid data.
    pub fn is_valid(self) -> bool {
        self != MoesiState::Invalid
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    state: MoesiState,
    /// LRU timestamp (higher = more recent).
    lru: u64,
    /// Cycle at which the line's data actually arrives (prefetch
    /// timeliness): a demand hit before this time waits for it.
    ready: u64,
    /// `true` if the line was inserted by a prefetcher and not yet used by
    /// demand traffic (for accuracy statistics).
    prefetched: bool,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present; data available at the given cycle.
    Hit {
        /// Cycle at which the data can be used (later than the access for
        /// in-flight prefetches).
        ready: u64,
    },
    /// The line was absent and must be fetched from the next level.
    Miss,
}

/// Statistics of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines inserted by a prefetcher.
    pub prefetch_fills: u64,
    /// Prefetched lines that were hit by demand traffic before eviction.
    pub prefetch_useful: u64,
    /// Dirty evictions (writebacks to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Demand accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; zero when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative writeback cache with LRU replacement.
///
/// The cache tracks tags, MOESI states and per-line data-ready cycles; line
/// *contents* live in the functional [`Memory`](crate::Memory) (the timing
/// and functional models are decoupled).
#[derive(Debug, Clone)]
pub struct Cache {
    name: &'static str,
    sets: usize,
    ways: usize,
    lines: Vec<Line>,
    lru_clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `size_bytes` capacity and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, or a size that is
    /// not a multiple of `ways * 64`).
    pub fn new(name: &'static str, size_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "cache must have at least one way");
        let lines_total = size_bytes / LINE_BYTES as usize;
        assert!(
            lines_total.is_multiple_of(ways) && lines_total > 0,
            "cache size must be a multiple of ways * {LINE_BYTES}"
        );
        let sets = lines_total / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            name,
            sets,
            ways,
            lines: vec![Line::default(); lines_total],
            lru_clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Capacity in bytes.
    pub fn size_bytes(&self) -> usize {
        self.sets * self.ways * LINE_BYTES as usize
    }

    /// Access statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr as usize) & (self.sets - 1)
    }

    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    fn find(&self, line_addr: u64) -> Option<usize> {
        let set = self.set_of(line_addr);
        self.slot_range(set)
            .find(|&i| self.lines[i].state.is_valid() && self.lines[i].tag == line_addr)
    }

    /// Performs a demand access for `line_addr` (an address divided by
    /// [`LINE_BYTES`]). On a hit the line becomes MRU and, for writes,
    /// transitions to `Modified`.
    pub fn access(&mut self, line_addr: u64, is_write: bool, now: u64) -> Access {
        self.lru_clock += 1;
        match self.find(line_addr) {
            Some(i) => {
                self.stats.hits += 1;
                let line = &mut self.lines[i];
                line.lru = self.lru_clock;
                if line.prefetched {
                    line.prefetched = false;
                    self.stats.prefetch_useful += 1;
                }
                if is_write {
                    line.state = MoesiState::Modified;
                }
                Access::Hit {
                    ready: line.ready.max(now),
                }
            }
            None => {
                self.stats.misses += 1;
                Access::Miss
            }
        }
    }

    /// Checks for presence without updating LRU or statistics.
    pub fn probe(&self, line_addr: u64) -> bool {
        self.find(line_addr).is_some()
    }

    /// Inserts `line_addr` (filling after a miss), evicting the LRU way.
    /// Returns the evicted line's address if it was dirty (requiring a
    /// writeback).
    pub fn fill(&mut self, line_addr: u64, is_write: bool, ready: u64) -> Option<u64> {
        let state = if is_write {
            MoesiState::Modified
        } else {
            MoesiState::Exclusive
        };
        self.fill_state(line_addr, state, ready, false)
    }

    /// Inserts a line on behalf of a prefetcher.
    pub fn fill_prefetch(&mut self, line_addr: u64, ready: u64) -> Option<u64> {
        self.fill_state(line_addr, MoesiState::Exclusive, ready, true)
    }

    /// Inserts a line with an explicit coherence state — the snoop bus uses
    /// this to fill `Shared` when another agent holds a copy (plain
    /// [`Cache::fill`] installs `Exclusive`/`Modified`, which is only
    /// correct for a sole owner). `prefetched` marks prefetcher-inserted
    /// lines for accuracy statistics. Returns the evicted line's address if
    /// it was dirty.
    pub fn fill_state(
        &mut self,
        line_addr: u64,
        state: MoesiState,
        ready: u64,
        prefetched: bool,
    ) -> Option<u64> {
        self.lru_clock += 1;
        if let Some(i) = self.find(line_addr) {
            // Already present (e.g. racing prefetch): refresh. Not counted
            // as a new prefetch fill — a refresh inserts no line, and
            // inflating `prefetch_fills` here would skew the accuracy
            // ratio `prefetch_useful / prefetch_fills`.
            let line = &mut self.lines[i];
            line.lru = self.lru_clock;
            line.ready = line.ready.min(ready);
            if !prefetched {
                // A demand fill overtaking an in-flight prefetch: the
                // prefetch did not beat demand, so a later demand hit must
                // not retroactively count it as useful.
                line.prefetched = false;
            }
            match state {
                MoesiState::Modified => line.state = MoesiState::Modified,
                MoesiState::Shared => {
                    // A refresh that learns the line is shared: dirty copies
                    // keep ownership, clean exclusivity is lost.
                    line.state = match line.state {
                        MoesiState::Modified | MoesiState::Owned => MoesiState::Owned,
                        _ => MoesiState::Shared,
                    };
                }
                // An Exclusive refresh carries no new information.
                _ => {}
            }
            return None;
        }
        if prefetched {
            self.stats.prefetch_fills += 1;
        }
        let set = self.set_of(line_addr);
        // The set is non-empty by construction (`ways > 0` is asserted in
        // `new`), so fall back to the set's first way instead of panicking.
        let victim = self
            .slot_range(set)
            .min_by_key(|&i| {
                let l = &self.lines[i];
                (l.state.is_valid(), l.lru)
            })
            .unwrap_or(set * self.ways);
        let evicted = {
            let l = &self.lines[victim];
            if l.state.is_dirty() {
                self.stats.writebacks += 1;
                Some(l.tag)
            } else {
                None
            }
        };
        self.lines[victim] = Line {
            tag: line_addr,
            state,
            lru: self.lru_clock,
            ready,
            prefetched,
        };
        evicted
    }

    /// Snoop invalidation (coherence hook): drops the line, returning `true`
    /// if it was dirty.
    pub fn snoop_invalidate(&mut self, line_addr: u64) -> bool {
        if let Some(i) = self.find(line_addr) {
            let dirty = self.lines[i].state.is_dirty();
            self.lines[i].state = MoesiState::Invalid;
            dirty
        } else {
            false
        }
    }

    /// Snoop downgrade to shared (another agent reads): `Modified`/`Owned`
    /// become `Owned`, `Exclusive` becomes `Shared`.
    pub fn snoop_share(&mut self, line_addr: u64) {
        if let Some(i) = self.find(line_addr) {
            let l = &mut self.lines[i];
            l.state = match l.state {
                MoesiState::Modified | MoesiState::Owned => MoesiState::Owned,
                MoesiState::Exclusive | MoesiState::Shared => MoesiState::Shared,
                MoesiState::Invalid => MoesiState::Invalid,
            };
        }
    }

    /// The MOESI state of a line, if present.
    pub fn state_of(&self, line_addr: u64) -> MoesiState {
        self.find(line_addr)
            .map_or(MoesiState::Invalid, |i| self.lines[i].state)
    }

    /// Iterates over every valid line as `(line address, state)` — the
    /// coherence-invariant checker walks this to prove the single-writer
    /// property across all L1s.
    pub fn valid_lines(&self) -> impl Iterator<Item = (u64, MoesiState)> + '_ {
        self.lines
            .iter()
            .filter(|l| l.state.is_valid())
            .map(|l| (l.tag, l.state))
    }

    /// Clears access statistics and per-line timing (ready cycles), keeping
    /// contents — used when re-measuring over a warmed cache.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        for l in &mut self.lines {
            l.ready = 0;
        }
    }

    /// Invalidates everything (e.g. between benchmark runs).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            l.state = MoesiState::Invalid;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B
        Cache::new("t", 512, 2)
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.sets(), 4);
        assert_eq!(c.ways(), 2);
        assert_eq!(c.size_bytes(), 512);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.access(5, false, 0), Access::Miss);
        c.fill(5, false, 10);
        match c.access(5, false, 20) {
            Access::Hit { ready } => assert_eq!(ready, 20),
            Access::Miss => panic!("expected hit"),
        }
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn inflight_fill_delays_hit() {
        let mut c = small();
        c.fill(5, false, 100);
        match c.access(5, false, 20) {
            Access::Hit { ready } => assert_eq!(ready, 100),
            Access::Miss => panic!("expected hit"),
        }
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Lines 0, 4, 8 map to set 0 (4 sets); 2-way.
        c.fill(0, false, 0);
        c.fill(4, false, 0);
        c.access(0, false, 0); // make 0 MRU
        c.fill(8, false, 0); // evicts 4
        assert!(c.probe(0));
        assert!(!c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.fill(0, true, 0);
        c.fill(4, false, 0);
        let evicted = c.fill(8, false, 0); // evicts 0 (LRU), dirty
        assert_eq!(evicted, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_dirties() {
        let mut c = small();
        c.fill(3, false, 0);
        assert_eq!(c.state_of(3), MoesiState::Exclusive);
        c.access(3, true, 0);
        assert_eq!(c.state_of(3), MoesiState::Modified);
    }

    #[test]
    fn snoop_transitions() {
        let mut c = small();
        c.fill(1, true, 0);
        c.snoop_share(1);
        assert_eq!(c.state_of(1), MoesiState::Owned);
        assert!(c.state_of(1).is_dirty());
        let dirty = c.snoop_invalidate(1);
        assert!(dirty);
        assert_eq!(c.state_of(1), MoesiState::Invalid);
    }

    #[test]
    fn prefetch_hit_before_ready_waits_for_future_cycle() {
        // Prefetch timeliness: a demand hit on a line whose data is still
        // in flight must report the *future* ready cycle, not the access
        // cycle, and the prefetch counts as useful exactly once.
        let mut c = small();
        c.fill_prefetch(5, 100);
        match c.access(5, false, 20) {
            Access::Hit { ready } => assert_eq!(ready, 100, "must wait for in-flight data"),
            Access::Miss => panic!("expected hit"),
        }
        assert_eq!(c.stats().prefetch_useful, 1);
    }

    #[test]
    fn prefetch_hit_after_ready_uses_access_cycle_and_counts_once() {
        let mut c = small();
        c.fill_prefetch(5, 100);
        // First demand touch before ready: useful, waits until 100.
        assert_eq!(c.access(5, false, 20), Access::Hit { ready: 100 });
        // Second demand touch after ready: data long arrived → access
        // cycle, and `prefetch_useful` must NOT be double-counted.
        assert_eq!(c.access(5, false, 150), Access::Hit { ready: 150 });
        assert_eq!(c.stats().prefetch_useful, 1);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn prefetch_refresh_does_not_inflate_fill_count() {
        let mut c = small();
        c.fill_prefetch(7, 50);
        c.fill_prefetch(7, 80); // refresh of a present line: no new fill
        assert_eq!(c.stats().prefetch_fills, 1);
        // The refresh keeps the earlier ready cycle.
        assert_eq!(c.access(7, false, 0), Access::Hit { ready: 50 });
        assert_eq!(c.stats().prefetch_useful, 1);
    }

    #[test]
    fn demand_fill_overtaking_prefetch_clears_usefulness() {
        let mut c = small();
        c.fill_prefetch(9, 200);
        // A demand fill of the same line (the prefetch lost the race): the
        // line is no longer attributable to the prefetcher.
        c.fill(9, false, 60);
        assert_eq!(c.access(9, false, 10), Access::Hit { ready: 60 });
        assert_eq!(c.stats().prefetch_useful, 0);
    }

    #[test]
    fn prefetch_accuracy_tracking() {
        let mut c = small();
        c.fill_prefetch(7, 0);
        c.fill_prefetch(11, 0);
        c.access(7, false, 0);
        assert_eq!(c.stats().prefetch_fills, 2);
        assert_eq!(c.stats().prefetch_useful, 1);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.fill(1, false, 0);
        c.flush();
        assert!(!c.probe(1));
    }

    #[test]
    fn hit_rate() {
        let mut c = small();
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.access(0, false, 0);
        c.fill(0, false, 0);
        c.access(0, false, 0);
        assert_eq!(c.stats().hit_rate(), 0.5);
    }

    #[test]
    fn fill_state_shared_and_valid_lines() {
        let mut c = small();
        c.fill_state(1, MoesiState::Shared, 0, false);
        assert_eq!(c.state_of(1), MoesiState::Shared);
        // A Shared refresh of a dirty line keeps ownership (M/O → Owned)…
        c.fill(2, true, 0);
        c.fill_state(2, MoesiState::Shared, 0, false);
        assert_eq!(c.state_of(2), MoesiState::Owned);
        // …and demotes clean exclusivity.
        c.fill(3, false, 0);
        c.fill_state(3, MoesiState::Shared, 0, false);
        assert_eq!(c.state_of(3), MoesiState::Shared);
        let mut lines: Vec<_> = c.valid_lines().collect();
        lines.sort_unstable_by_key(|&(addr, _)| addr);
        assert_eq!(
            lines,
            vec![
                (1, MoesiState::Shared),
                (2, MoesiState::Owned),
                (3, MoesiState::Shared),
            ]
        );
    }

    /// One local or snoop event applied to a resident line.
    #[derive(Debug, Clone, Copy)]
    enum Event {
        ReadHit,
        WriteHit,
        SnoopShare,
        SnoopInvalidate,
    }

    const EVENTS: [Event; 4] = [
        Event::ReadHit,
        Event::WriteHit,
        Event::SnoopShare,
        Event::SnoopInvalidate,
    ];

    const STATES: [MoesiState; 5] = [
        MoesiState::Modified,
        MoesiState::Owned,
        MoesiState::Exclusive,
        MoesiState::Shared,
        MoesiState::Invalid,
    ];

    /// Puts line 5 of a fresh cache into `state` using only public API.
    fn cache_in_state(state: MoesiState) -> Cache {
        let mut c = small();
        match state {
            MoesiState::Modified => {
                c.fill(5, true, 0);
            }
            MoesiState::Owned => {
                // A dirty line downgraded by a remote read keeps ownership.
                c.fill(5, true, 0);
                c.snoop_share(5);
            }
            MoesiState::Exclusive => {
                c.fill(5, false, 0);
            }
            MoesiState::Shared => {
                c.fill_state(5, MoesiState::Shared, 0, false);
            }
            MoesiState::Invalid => {}
        }
        assert_eq!(c.state_of(5), state, "setup for {state:?}");
        c
    }

    /// The reference MOESI transition function: `(next state, dirty data
    /// surrendered)` for one event against one starting state.
    fn expected(state: MoesiState, event: Event) -> (MoesiState, bool) {
        use MoesiState::*;
        match (state, event) {
            // Local reads never change the coherence state.
            (s, Event::ReadHit) => (s, false),
            // Local writes dirty the line. (In the multicore hierarchy a
            // write to a Shared/Owned line first invalidates remote copies
            // over the bus — see `SmpMem` — but the per-cache transition is
            // always to Modified.)
            (Invalid, Event::WriteHit) => (Invalid, false),
            (_, Event::WriteHit) => (Modified, false),
            // A remote read: dirty states keep ownership and forward data,
            // clean states drop exclusivity.
            (Modified | Owned, Event::SnoopShare) => (Owned, false),
            (Exclusive | Shared, Event::SnoopShare) => (Shared, false),
            (Invalid, Event::SnoopShare) => (Invalid, false),
            // A remote write: the line dies; dirty data must be handed over
            // (the snoop-bus caller writes it back into the shared L2).
            (s, Event::SnoopInvalidate) => (Invalid, s.is_dirty()),
        }
    }

    /// Satellite: exhaustive state × event sweep over the full MOESI
    /// machine, including the `snoop_invalidate`/`snoop_share` paths that
    /// were dead code until the snoop bus (crate::smp) started driving
    /// them.
    #[test]
    fn moesi_transition_table_is_exhaustive() {
        for state in STATES {
            for event in EVENTS {
                let mut c = cache_in_state(state);
                let (want_state, want_dirty) = expected(state, event);
                let got_dirty = match event {
                    Event::ReadHit => {
                        // A read of an Invalid (absent) line is a miss, not
                        // a hit; the state stays Invalid.
                        let r = c.access(5, false, 0);
                        assert_eq!(r == Access::Miss, state == MoesiState::Invalid);
                        false
                    }
                    Event::WriteHit => {
                        let r = c.access(5, true, 0);
                        assert_eq!(r == Access::Miss, state == MoesiState::Invalid);
                        false
                    }
                    Event::SnoopShare => {
                        c.snoop_share(5);
                        false
                    }
                    Event::SnoopInvalidate => c.snoop_invalidate(5),
                };
                assert_eq!(
                    c.state_of(5),
                    want_state,
                    "state after {state:?} × {event:?}"
                );
                assert_eq!(
                    got_dirty, want_dirty,
                    "dirty handover after {state:?} × {event:?}"
                );
                // Dirtiness bookkeeping must agree with the state itself.
                assert_eq!(
                    c.state_of(5).is_dirty(),
                    matches!(want_state, MoesiState::Modified | MoesiState::Owned)
                );
            }
        }
    }
}
