//! Multicore memory hierarchy: N private L1-D slices over one shared
//! L2/DRAM, kept coherent by a snoop bus that drives the MOESI
//! `snoop_share`/`snoop_invalidate` hooks of [`Cache`] — the hooks the
//! single-core hierarchy never exercised.
//!
//! Protocol (paper Sec. IV-A *Memory Coherence*, classic MOESI over a
//! broadcast bus):
//!
//! - an L1 read miss broadcasts on the bus; if a remote L1 holds the line
//!   dirty (`Modified`/`Owned`) it forwards the data cache-to-cache and
//!   keeps ownership (`→ Owned`), otherwise clean remote copies drop
//!   exclusivity (`Exclusive → Shared`) and the shared L2 serves the line;
//!   the requester fills `Shared` when any remote copy exists, `Exclusive`
//!   when it is the sole holder;
//! - a write to a line not held `Modified`/`Exclusive` broadcasts an
//!   invalidation; a remote dirty copy is flushed into the shared L2 on its
//!   way out;
//! - `StreamL2` requests (non-cacheable at L1) still snoop the L1s so a
//!   stream never reads stale data past a dirty private copy;
//!   `StreamMem` requests bypass coherence entirely, exactly as the
//!   single-core model treats them as non-cacheable at all levels.
//!
//! The bus is a single arbitration point (one coherence transaction per
//! cycle, in request order); cache-to-cache forwarding costs the L2 load-to-
//! use latency. With one core every snoop path degenerates to a no-op and
//! the hierarchy is cycle-identical to [`MemSystem`] (asserted by tests).
//!
//! The single-writer invariant — at most one `Modified`/`Exclusive` holder
//! per line, and a `Modified`/`Exclusive` holder implies no other valid
//! copy — is checked after every coherence-relevant state change (state
//! only changes at those events, so this is equivalent to checking every
//! cycle); [`SmpMem::check_coherence`] additionally performs the full
//! cross-product scan on demand.

use crate::cache::{Access, Cache, MoesiState, LINE_BYTES};
use crate::dram::{Dram, DramStats};
use crate::fault::{FaultInjector, FaultLevel, FaultStats};
use crate::hierarchy::{MemConfig, MemStats, MshrBank, Path, ReadOutcome};
use crate::memory::PAGE_SIZE;
use crate::prefetch::{AmpmPrefetcher, StridePrefetcher};
use crate::profile::{ReadProfile, ReqClass, ServedBy};
use crate::tlb::{Tlb, Translation};

/// Per-core snoop-bus traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnoopStats {
    /// Coherence transactions this core started on the bus (miss
    /// broadcasts and invalidation broadcasts).
    pub bus_transactions: u64,
    /// Snoop probes that found the line valid in this core's L1.
    pub snoops_received: u64,
    /// Lines invalidated in this core's L1 by a remote write.
    pub invalidations: u64,
    /// Clean/dirty exclusivity lost in this core's L1 to a remote read
    /// (`Modified → Owned`, `Exclusive → Shared`).
    pub downgrades: u64,
    /// Reads this core had served cache-to-cache from a remote dirty L1.
    pub owner_forwards: u64,
    /// Dirty lines this core's L1 flushed to the shared L2 because a
    /// remote write invalidated them.
    pub dirty_writebacks: u64,
}

impl SnoopStats {
    /// All cross-core coherence events observed at this core (received
    /// probes plus forwarded reads) — nonzero means the snoop hooks ran.
    pub fn cross_core_events(&self) -> u64 {
        self.snoops_received + self.owner_forwards
    }
}

/// The shared snoop bus: a single arbitration point granting one coherence
/// transaction per cycle, in request order (deterministic).
#[derive(Debug, Clone, Default)]
pub struct SnoopBus {
    /// Next cycle the bus is free.
    free: u64,
    /// Total transactions granted.
    transactions: u64,
}

impl SnoopBus {
    /// Grants the bus at or after `now`; returns the grant cycle.
    fn arbitrate(&mut self, now: u64) -> u64 {
        let start = self.free.max(now);
        self.free = start + 1;
        self.transactions += 1;
        start
    }

    /// Total transactions granted since the last reset.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }
}

/// A detected violation of the single-writer MOESI invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherenceViolation {
    /// The offending line address.
    pub line: u64,
    /// Every L1 holding the line, as `(core, state)`.
    pub holders: Vec<(usize, MoesiState)>,
}

impl std::fmt::Display for CoherenceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {:#x} held by", self.line)?;
        for (core, state) in &self.holders {
            write!(f, " core{core}:{state:?}")?;
        }
        write!(f, " — violates single-writer MOESI invariant")
    }
}

/// One core's private slice of the hierarchy.
#[derive(Debug, Clone)]
struct CoreMem {
    l1: Cache,
    stride: StridePrefetcher,
    l1_mshrs: MshrBank,
    tlb: Tlb,
    injector: Option<FaultInjector>,
    reads: u64,
    writes: u64,
    profile: ReadProfile,
    snoop: SnoopStats,
    /// Shared-DRAM traffic attributed to this core (which core's request
    /// chain caused the access), so per-core stats obey the same
    /// conservation laws as a single-core run.
    dram_reads: u64,
    dram_read_bytes: u64,
    dram_writes: u64,
    dram_write_bytes: u64,
}

impl CoreMem {
    fn new(cfg: &MemConfig, core: usize) -> Self {
        let injector = cfg.fault.clone().map(|mut f| {
            // Decorrelate injection across cores; core 0 keeps the seed so
            // a one-core SmpMem faults identically to MemSystem.
            f.seed = f.seed.wrapping_add(core as u64 * 0x9E37_79B9_7F4A_7C15);
            FaultInjector::new(f)
        });
        Self {
            l1: Cache::new("L1-D", cfg.l1_size, cfg.l1_ways),
            stride: StridePrefetcher::new(cfg.stride_depth, 64),
            l1_mshrs: MshrBank::new(cfg.l1_mshrs),
            tlb: Tlb::new(cfg.tlb_entries, cfg.tlb_walk_latency),
            injector,
            reads: 0,
            writes: 0,
            profile: ReadProfile::default(),
            snoop: SnoopStats::default(),
            dram_reads: 0,
            dram_read_bytes: 0,
            dram_writes: 0,
            dram_write_bytes: 0,
        }
    }
}

/// What one shared-level fetch (post-snoop) resolved to.
struct Fetched {
    ready: u64,
    mshr_wait: u64,
    from_dram: bool,
    from_snoop: bool,
    /// Coherence state the requester's L1 must fill with.
    fill_state: MoesiState,
}

/// N-core memory hierarchy: private L1-D/TLB/stride-prefetcher slices,
/// shared L2 + AMPM + DRAM, one snoop bus. Each timing core accesses it
/// through its own [`SmpPort`] (a [`MemPort`](crate::MemPort)).
#[derive(Debug, Clone)]
pub struct SmpMem {
    cfg: MemConfig,
    cores: Vec<CoreMem>,
    l2: Cache,
    ampm: AmpmPrefetcher,
    dram: Dram,
    l2_port_free: u64,
    l2_mshrs: MshrBank,
    bus: SnoopBus,
    /// Verify the single-writer invariant after every coherence event
    /// (cheap: one tag probe per remote core). On by default.
    verify: bool,
}

impl SmpMem {
    /// Creates an `ncores`-way hierarchy; every core gets the same private
    /// L1/TLB/prefetcher geometry from `cfg`, and the L2/DRAM are shared.
    pub fn new(cfg: MemConfig, ncores: usize) -> Self {
        let ncores = ncores.max(1);
        Self {
            cores: (0..ncores).map(|c| CoreMem::new(&cfg, c)).collect(),
            l2: Cache::new("L2", cfg.l2_size, cfg.l2_ways),
            ampm: AmpmPrefetcher::new(64, cfg.ampm_queue.min(2)),
            dram: Dram::new(cfg.dram),
            l2_port_free: 0,
            l2_mshrs: MshrBank::new(cfg.l2_mshrs),
            bus: SnoopBus::default(),
            verify: true,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Enables/disables per-event invariant verification.
    pub fn set_verify(&mut self, on: bool) {
        self.verify = on;
    }

    /// One core's mutable port into the hierarchy.
    pub fn port(&mut self, core: usize) -> SmpPort<'_> {
        assert!(core < self.cores.len(), "core {core} out of range");
        SmpPort { smp: self, core }
    }

    /// One core's TLB (fault-injection hooks).
    pub fn tlb_mut(&mut self, core: usize) -> &mut Tlb {
        &mut self.cores[core].tlb
    }

    /// Per-core snoop counters.
    pub fn snoop_stats(&self, core: usize) -> SnoopStats {
        self.cores[core].snoop
    }

    /// Total snoop-bus transactions.
    pub fn bus_transactions(&self) -> u64 {
        self.bus.transactions()
    }

    /// Shared-L2 statistics (all cores combined).
    pub fn l2_stats(&self) -> crate::CacheStats {
        self.l2.stats()
    }

    /// Shared-DRAM statistics (all cores combined).
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }

    /// One core's statistics slice. Shared-device traffic (DRAM) is
    /// attributed to the core whose request chain caused it, so every
    /// per-core `MemStats` obeys the single-core conservation laws
    /// (`profile.served_count(Dram) == dram.reads`, demand+stream sample
    /// counts == `reads`); the `l2` field reports the shared L2.
    pub fn core_stats(&self, core: usize) -> MemStats {
        let c = &self.cores[core];
        MemStats {
            l1: c.l1.stats(),
            l2: self.l2.stats(),
            dram: DramStats {
                read_bytes: c.dram_read_bytes,
                write_bytes: c.dram_write_bytes,
                reads: c.dram_reads,
                writes: c.dram_writes,
            },
            reads: c.reads,
            writes: c.writes,
            tlb_hits: c.tlb.hits(),
            tlb_misses: c.tlb.misses(),
            profile: c.profile,
            snoop: c.snoop,
        }
    }

    /// DRAM bus utilization over `cycles` (shared device).
    pub fn bus_utilization(&self, cycles: u64) -> f64 {
        self.dram.utilization(cycles)
    }

    /// Peak DRAM bandwidth in bytes/cycle.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.dram.peak_bytes_per_cycle()
    }

    /// Full cross-product scan of the single-writer invariant: a line held
    /// `Modified`/`Exclusive` by one L1 must be invalid in every other L1,
    /// and at most one L1 may own (`Owned`) a line.
    pub fn check_coherence(&self) -> Result<(), CoherenceViolation> {
        for (i, c) in self.cores.iter().enumerate() {
            for (line, state) in c.l1.valid_lines() {
                let exclusive = matches!(state, MoesiState::Modified | MoesiState::Exclusive);
                let owned = state == MoesiState::Owned;
                if !exclusive && !owned {
                    continue;
                }
                for (j, other) in self.cores.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let s = other.l1.state_of(line);
                    let clash = if exclusive {
                        s.is_valid()
                    } else {
                        // A second dirty copy of an Owned line.
                        s.is_dirty() || s == MoesiState::Exclusive
                    };
                    if clash {
                        return Err(CoherenceViolation {
                            line,
                            holders: self
                                .cores
                                .iter()
                                .enumerate()
                                .filter(|(_, c)| c.l1.state_of(line).is_valid())
                                .map(|(k, c)| (k, c.l1.state_of(line)))
                                .collect(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Per-event invariant check for one line (every state change goes
    /// through a coherence event, so this is equivalent to a per-cycle
    /// check of the whole cache).
    fn verify_line(&self, line: u64) {
        if !self.verify {
            return;
        }
        let mut exclusive = 0usize;
        let mut dirty = 0usize;
        let mut valid = 0usize;
        for c in &self.cores {
            match c.l1.state_of(line) {
                MoesiState::Modified => {
                    exclusive += 1;
                    dirty += 1;
                    valid += 1;
                }
                MoesiState::Exclusive => {
                    exclusive += 1;
                    valid += 1;
                }
                MoesiState::Owned => {
                    dirty += 1;
                    valid += 1;
                }
                MoesiState::Shared => valid += 1,
                MoesiState::Invalid => {}
            }
        }
        if exclusive > 1 || dirty > 1 || (exclusive == 1 && valid > 1) {
            let v = CoherenceViolation {
                line,
                holders: self
                    .cores
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.l1.state_of(line).is_valid())
                    .map(|(k, c)| (k, c.l1.state_of(line)))
                    .collect(),
            };
            panic!("coherence: {v}");
        }
    }

    /// Resets traffic statistics and time cursors while keeping cache,
    /// prefetcher and TLB state (warm-measurement hook, mirroring
    /// [`MemSystem::reset_stats`](crate::MemSystem::reset_stats)).
    pub fn reset_stats(&mut self) {
        self.dram.reset();
        self.l2.reset_stats();
        self.l2_port_free = 0;
        self.l2_mshrs = MshrBank::new(self.cfg.l2_mshrs);
        self.bus = SnoopBus::default();
        for c in &mut self.cores {
            c.l1.reset_stats();
            c.tlb.reset_stats();
            c.l1_mshrs = MshrBank::new(self.cfg.l1_mshrs);
            c.reads = 0;
            c.writes = 0;
            c.profile = ReadProfile::default();
            c.snoop = SnoopStats::default();
            c.dram_reads = 0;
            c.dram_read_bytes = 0;
            c.dram_writes = 0;
            c.dram_write_bytes = 0;
            if let Some(inj) = &mut c.injector {
                inj.reset_stats();
            }
        }
    }

    // ---- attribution-aware shared devices -------------------------------

    fn dram_read(&mut self, core: usize, line: u64, at: u64) -> u64 {
        let c = &mut self.cores[core];
        c.dram_reads += 1;
        c.dram_read_bytes += LINE_BYTES;
        self.dram.read(line, at)
    }

    fn dram_write(&mut self, core: usize, line: u64, at: u64) -> u64 {
        let c = &mut self.cores[core];
        c.dram_writes += 1;
        c.dram_write_bytes += LINE_BYTES;
        self.dram.write(line, at)
    }

    fn l2_port(&mut self, now: u64) -> u64 {
        let start = (self.l2_port_free / self.cfg.l2_ports as u64).max(now);
        self.l2_port_free = (start * self.cfg.l2_ports as u64).max(self.l2_port_free) + 1;
        start
    }

    /// Reads through the shared L2 (mirrors `MemSystem::l2_read`, with DRAM
    /// traffic attributed to `core`).
    fn l2_read(
        &mut self,
        core: usize,
        line: u64,
        now: u64,
        allocate: bool,
        train: bool,
    ) -> Fetched {
        let start = self.l2_port(now);
        let out = match self.l2.access(line, false, start) {
            Access::Hit { ready } => Fetched {
                ready: ready.max(start) + self.cfg.l2_latency,
                mshr_wait: 0,
                from_dram: false,
                from_snoop: false,
                fill_state: MoesiState::Exclusive,
            },
            Access::Miss => {
                let (slot, miss_start) = self.l2_mshrs.acquire(start);
                let ready = self.dram_read(core, line, miss_start + self.cfg.l2_latency);
                self.l2_mshrs.release_at(slot, ready);
                if allocate {
                    if let Some(victim) = self.l2.fill(line, false, ready) {
                        self.dram_write(core, victim, start);
                    }
                }
                Fetched {
                    ready,
                    mshr_wait: miss_start - start,
                    from_dram: true,
                    from_snoop: false,
                    fill_state: MoesiState::Exclusive,
                }
            }
        };
        if self.cfg.l2_prefetcher && train {
            for pf in self.ampm.observe(line) {
                if !self.l2.probe(pf) {
                    let pf_ready = self.dram_read(core, pf, start + self.cfg.l2_latency);
                    self.cores[core].profile.record(
                        ReqClass::Prefetch,
                        ServedBy::Dram,
                        pf_ready - start,
                    );
                    if let Some(victim) = self.l2.fill_prefetch(pf, pf_ready) {
                        self.dram_write(core, victim, pf_ready);
                    }
                }
            }
        }
        out
    }

    /// Broadcasts a read miss from `core` and resolves it: owner forwarding
    /// from a remote dirty L1, or a shared-L2 read, downgrading every
    /// remote copy. `at` is the cycle the miss leaves the L1.
    fn fetch_shared(&mut self, core: usize, line: u64, at: u64, train: bool) -> Fetched {
        if self.cores.len() == 1 {
            return self.l2_read(core, line, at, true, train);
        }
        let grant = self.bus.arbitrate(at);
        self.cores[core].snoop.bus_transactions += 1;
        let mut owner = None;
        let mut any_remote = false;
        for i in 0..self.cores.len() {
            if i == core {
                continue;
            }
            let state = self.cores[i].l1.state_of(line);
            if !state.is_valid() {
                continue;
            }
            any_remote = true;
            let c = &mut self.cores[i];
            c.snoop.snoops_received += 1;
            if matches!(state, MoesiState::Modified | MoesiState::Exclusive) {
                c.snoop.downgrades += 1;
            }
            c.l1.snoop_share(line);
            if state.is_dirty() && owner.is_none() {
                owner = Some(i);
            }
        }
        let out = if owner.is_some() {
            // Cache-to-cache forward: the owner keeps the dirty line
            // (`Owned`), no L2 or DRAM involvement, one bus hop at the L2's
            // load-to-use cost.
            self.cores[core].snoop.owner_forwards += 1;
            Fetched {
                ready: grant + self.cfg.l2_latency,
                mshr_wait: 0,
                from_dram: false,
                from_snoop: true,
                fill_state: MoesiState::Shared,
            }
        } else {
            let mut out = self.l2_read(core, line, grant, true, train);
            if any_remote {
                out.fill_state = MoesiState::Shared;
            }
            out
        };
        self.verify_line(line);
        out
    }

    /// Broadcasts an invalidation from `core`: every remote copy dies, and
    /// remote dirty data is flushed into the shared L2 at `at`.
    fn invalidate_remotes(&mut self, core: usize, line: u64, at: u64) {
        self.cores[core].snoop.bus_transactions += 1;
        for i in 0..self.cores.len() {
            if i == core {
                continue;
            }
            if !self.cores[i].l1.state_of(line).is_valid() {
                continue;
            }
            let c = &mut self.cores[i];
            c.snoop.snoops_received += 1;
            c.snoop.invalidations += 1;
            if c.l1.snoop_invalidate(line) {
                c.snoop.dirty_writebacks += 1;
                if let Some(victim) = self.l2.fill(line, true, at) {
                    self.dram_write(core, victim, at);
                }
            }
        }
    }

    /// `true` if any remote L1 holds `line` valid.
    fn any_remote_copy(&self, core: usize, line: u64) -> bool {
        self.cores
            .iter()
            .enumerate()
            .any(|(i, c)| i != core && c.l1.state_of(line).is_valid())
    }

    /// A remote core holding `line` dirty, if any.
    fn remote_owner(&self, core: usize, line: u64) -> Option<usize> {
        self.cores
            .iter()
            .enumerate()
            .find(|(i, c)| *i != core && c.l1.state_of(line).is_dirty())
            .map(|(i, _)| i)
    }

    // ---- the per-core MemPort operations --------------------------------

    /// Translation through `core`'s TLB (and injector).
    pub fn translate(&mut self, core: usize, vaddr: u64) -> Translation {
        let c = &mut self.cores[core];
        if let Some(inj) = &mut c.injector {
            let page = vaddr / PAGE_SIZE;
            if inj.page_fault_on_first_touch(page) {
                return Translation::Fault { page };
            }
        }
        c.tlb.translate(vaddr)
    }

    /// Transient-fault query for `core` (see `MemSystem::fault_transient`).
    pub fn fault_transient(&mut self, core: usize, line: u64, attempt: u32) -> bool {
        match &mut self.cores[core].injector {
            Some(inj) => inj.transient(line, attempt),
            None => false,
        }
    }

    /// Poisoned-response query for `core`.
    pub fn fault_poisoned(
        &mut self,
        core: usize,
        line: u64,
        attempt: u32,
        from_dram: bool,
        path: Path,
    ) -> bool {
        let Some(inj) = &mut self.cores[core].injector else {
            return false;
        };
        let level = if from_dram {
            FaultLevel::Dram
        } else {
            match path {
                Path::Normal | Path::StreamL1 => FaultLevel::L1,
                Path::StreamL2 | Path::StreamMem => FaultLevel::L2,
            }
        };
        inj.poisoned(line, attempt, level)
    }

    /// Retry backoff for `core`.
    pub fn fault_backoff(&self, core: usize, attempt: u32) -> u64 {
        self.cores[core]
            .injector
            .as_ref()
            .map_or(0, |inj| inj.backoff(attempt))
    }

    /// Injected-fault counters for `core`.
    pub fn fault_stats(&self, core: usize) -> FaultStats {
        self.cores[core]
            .injector
            .as_ref()
            .map_or_else(FaultStats::default, |inj| inj.stats())
    }

    /// A demand read from `core` with stall attribution; mirrors
    /// [`MemSystem::read_explained`](crate::MemSystem::read_explained) plus
    /// the snoop protocol above.
    pub fn read_explained(
        &mut self,
        core: usize,
        addr: u64,
        pc: u64,
        now: u64,
        path: Path,
    ) -> ReadOutcome {
        self.cores[core].reads += 1;
        let line = addr / LINE_BYTES;
        let class = if path == Path::Normal {
            ReqClass::Demand
        } else {
            ReqClass::Stream
        };
        match path {
            Path::Normal | Path::StreamL1 => {
                let out = match self.cores[core].l1.access(line, false, now) {
                    Access::Hit { ready } => {
                        let out = ReadOutcome {
                            ready: ready.max(now) + self.cfg.l1_latency,
                            mshr_wait: 0,
                            from_dram: false,
                            from_snoop: false,
                        };
                        self.cores[core]
                            .profile
                            .record(class, ServedBy::L1, out.ready - now);
                        out
                    }
                    Access::Miss => {
                        let (slot, start) = self.cores[core].l1_mshrs.acquire(now);
                        let inner =
                            self.fetch_shared(core, line, start + self.cfg.l1_latency, true);
                        self.cores[core].l1_mshrs.release_at(slot, inner.ready);
                        if let Some(victim) = self.cores[core].l1.fill_state(
                            line,
                            inner.fill_state,
                            inner.ready,
                            false,
                        ) {
                            if let Some(v2) = self.l2.fill(victim, true, now) {
                                self.dram_write(core, v2, now);
                            }
                        }
                        self.verify_line(line);
                        let served = if inner.from_snoop {
                            ServedBy::Remote
                        } else if inner.from_dram {
                            ServedBy::Dram
                        } else {
                            ServedBy::L2
                        };
                        self.cores[core]
                            .profile
                            .record(class, served, inner.ready - now);
                        ReadOutcome {
                            ready: inner.ready,
                            mshr_wait: (start - now) + inner.mshr_wait,
                            from_dram: inner.from_dram,
                            from_snoop: inner.from_snoop,
                        }
                    }
                };
                if self.cfg.l1_prefetcher && path == Path::Normal {
                    let reqs = self.cores[core].stride.observe(pc, addr);
                    for pf in reqs {
                        if !self.cores[core].l1.probe(pf) {
                            let (slot, start) = self.cores[core].l1_mshrs.acquire(now);
                            let inner =
                                self.fetch_shared(core, pf, start + self.cfg.l1_latency, true);
                            self.cores[core].l1_mshrs.release_at(slot, inner.ready);
                            let served = if inner.from_snoop {
                                ServedBy::Remote
                            } else if inner.from_dram {
                                ServedBy::Dram
                            } else {
                                ServedBy::L2
                            };
                            self.cores[core].profile.record(
                                ReqClass::Prefetch,
                                served,
                                inner.ready - now,
                            );
                            if let Some(victim) = self.cores[core].l1.fill_state(
                                pf,
                                inner.fill_state,
                                inner.ready,
                                true,
                            ) {
                                if let Some(v2) = self.l2.fill(victim, true, now) {
                                    self.dram_write(core, v2, now);
                                }
                            }
                            self.verify_line(pf);
                        }
                    }
                }
                out
            }
            Path::StreamL2 => {
                // Non-cacheable at L1, but a remote L1 may hold the line
                // dirty: snoop for an owner first.
                if self.cores.len() > 1 {
                    if let Some(owner) = self.remote_owner(core, line) {
                        let grant = self.bus.arbitrate(now);
                        self.cores[core].snoop.bus_transactions += 1;
                        let oc = &mut self.cores[owner];
                        oc.snoop.snoops_received += 1;
                        if oc.l1.state_of(line) == MoesiState::Modified {
                            oc.snoop.downgrades += 1;
                        }
                        oc.l1.snoop_share(line);
                        self.cores[core].snoop.owner_forwards += 1;
                        self.verify_line(line);
                        let ready = grant + self.cfg.l2_latency;
                        self.cores[core]
                            .profile
                            .record(class, ServedBy::Remote, ready - now);
                        return ReadOutcome {
                            ready,
                            mshr_wait: 0,
                            from_dram: false,
                            from_snoop: true,
                        };
                    }
                }
                let out = self.l2_read(core, line, now, true, false);
                let served = if out.from_dram {
                    ServedBy::Dram
                } else {
                    ServedBy::L2
                };
                self.cores[core]
                    .profile
                    .record(class, served, out.ready - now);
                ReadOutcome {
                    ready: out.ready,
                    mshr_wait: out.mshr_wait,
                    from_dram: out.from_dram,
                    from_snoop: false,
                }
            }
            Path::StreamMem => {
                let ready = self.dram_read(core, line, now);
                self.cores[core]
                    .profile
                    .record(class, ServedBy::Dram, ready - now);
                ReadOutcome {
                    ready,
                    mshr_wait: 0,
                    from_dram: true,
                    from_snoop: false,
                }
            }
        }
    }

    /// A demand write from `core` (write-allocate; mirrors
    /// [`MemSystem::write`](crate::MemSystem::write) plus invalidation
    /// broadcasts).
    pub fn write(&mut self, core: usize, addr: u64, _pc: u64, now: u64, path: Path) -> u64 {
        self.cores[core].writes += 1;
        let line = addr / LINE_BYTES;
        match path {
            Path::Normal | Path::StreamL1 => {
                // Writing a line we do not hold exclusively requires the
                // bus: invalidate every remote copy first.
                let prior = self.cores[core].l1.state_of(line);
                let upgrade =
                    self.cores.len() > 1 && matches!(prior, MoesiState::Shared | MoesiState::Owned);
                let bus_at = if upgrade {
                    let grant = self.bus.arbitrate(now);
                    self.invalidate_remotes(core, line, grant);
                    grant
                } else {
                    now
                };
                let accept = match self.cores[core].l1.access(line, true, now) {
                    Access::Hit { ready } => ready.max(bus_at) + 1,
                    Access::Miss => {
                        let (slot, start) = self.cores[core].l1_mshrs.acquire(now);
                        let at = if self.cores.len() > 1 {
                            let grant = self.bus.arbitrate(start);
                            self.invalidate_remotes(core, line, grant);
                            grant
                        } else {
                            start
                        };
                        let inner = self.l2_read(core, line, at + self.cfg.l1_latency, true, true);
                        self.cores[core].l1_mshrs.release_at(slot, inner.ready);
                        let served = if inner.from_dram {
                            ServedBy::Dram
                        } else {
                            ServedBy::L2
                        };
                        self.cores[core].profile.record(
                            ReqClass::WriteAlloc,
                            served,
                            inner.ready - now,
                        );
                        if let Some(victim) = self.cores[core].l1.fill(line, true, inner.ready) {
                            if let Some(v2) = self.l2.fill(victim, true, now) {
                                self.dram_write(core, v2, now);
                            }
                        }
                        inner.ready
                    }
                };
                self.verify_line(line);
                accept
            }
            Path::StreamL2 => {
                if self.cores.len() > 1 && self.any_remote_copy(core, line) {
                    let grant = self.bus.arbitrate(now);
                    self.invalidate_remotes(core, line, grant);
                    self.verify_line(line);
                }
                let start = self.l2_port(now);
                match self.l2.access(line, true, start) {
                    Access::Hit { ready } => ready.max(start) + 1,
                    Access::Miss => {
                        let (slot, miss_start) = self.l2_mshrs.acquire(start);
                        let ready = self.dram_read(core, line, miss_start + self.cfg.l2_latency);
                        self.cores[core].profile.record(
                            ReqClass::WriteAlloc,
                            ServedBy::Dram,
                            ready - now,
                        );
                        self.l2_mshrs.release_at(slot, ready);
                        if let Some(victim) = self.l2.fill(line, true, ready) {
                            self.dram_write(core, victim, start);
                        }
                        ready
                    }
                }
            }
            Path::StreamMem => self.dram_write(core, line, now),
        }
    }

    /// A full-line write from `core` (no allocate-read; mirrors
    /// [`MemSystem::write_full_line`](crate::MemSystem::write_full_line)
    /// plus invalidation broadcasts).
    pub fn write_full_line(
        &mut self,
        core: usize,
        addr: u64,
        _pc: u64,
        now: u64,
        path: Path,
    ) -> u64 {
        self.cores[core].writes += 1;
        let line = addr / LINE_BYTES;
        match path {
            Path::Normal | Path::StreamL1 => {
                let prior = self.cores[core].l1.state_of(line);
                if self.cores.len() > 1
                    && !matches!(prior, MoesiState::Modified | MoesiState::Exclusive)
                    && self.any_remote_copy(core, line)
                {
                    let grant = self.bus.arbitrate(now);
                    self.invalidate_remotes(core, line, grant);
                }
                let accept = match self.cores[core].l1.access(line, true, now) {
                    Access::Hit { ready } => ready.max(now) + 1,
                    Access::Miss => {
                        if let Some(victim) = self.cores[core].l1.fill(line, true, now) {
                            if let Some(v2) = self.l2.fill(victim, true, now) {
                                self.dram_write(core, v2, now);
                            }
                        }
                        now + 1
                    }
                };
                self.verify_line(line);
                accept
            }
            Path::StreamL2 => {
                if self.cores.len() > 1 && self.any_remote_copy(core, line) {
                    let grant = self.bus.arbitrate(now);
                    self.invalidate_remotes(core, line, grant);
                    self.verify_line(line);
                }
                let start = self.l2_port(now);
                match self.l2.access(line, true, start) {
                    Access::Hit { ready } => ready.max(start) + 1,
                    Access::Miss => {
                        if let Some(victim) = self.l2.fill(line, true, start) {
                            self.dram_write(core, victim, start);
                        }
                        start + 1
                    }
                }
            }
            Path::StreamMem => self.dram_write(core, line, now),
        }
    }
}

/// One core's [`MemPort`](crate::MemPort) into an [`SmpMem`].
#[derive(Debug)]
pub struct SmpPort<'a> {
    smp: &'a mut SmpMem,
    core: usize,
}

impl SmpPort<'_> {
    /// The core id this port belongs to.
    pub fn core(&self) -> usize {
        self.core
    }

    /// The underlying shared hierarchy.
    pub fn shared(&mut self) -> &mut SmpMem {
        self.smp
    }
}

impl crate::MemPort for SmpPort<'_> {
    fn translate(&mut self, vaddr: u64) -> Translation {
        self.smp.translate(self.core, vaddr)
    }

    fn fault_transient(&mut self, line: u64, attempt: u32) -> bool {
        self.smp.fault_transient(self.core, line, attempt)
    }

    fn fault_poisoned(&mut self, line: u64, attempt: u32, from_dram: bool, path: Path) -> bool {
        self.smp
            .fault_poisoned(self.core, line, attempt, from_dram, path)
    }

    fn fault_backoff(&self, attempt: u32) -> u64 {
        self.smp.fault_backoff(self.core, attempt)
    }

    fn fault_stats(&self) -> FaultStats {
        self.smp.fault_stats(self.core)
    }

    fn read_explained(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> ReadOutcome {
        self.smp.read_explained(self.core, addr, pc, now, path)
    }

    fn write(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> u64 {
        self.smp.write(self.core, addr, pc, now, path)
    }

    fn write_full_line(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> u64 {
        self.smp.write_full_line(self.core, addr, pc, now, path)
    }

    fn stats(&self) -> MemStats {
        self.smp.core_stats(self.core)
    }

    fn bus_utilization(&self, cycles: u64) -> f64 {
        self.smp.bus_utilization(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemSystem, ServedBy};

    fn cfg() -> MemConfig {
        MemConfig::default()
    }

    /// One core behind the SMP hierarchy must be cycle-identical to the
    /// single-core `MemSystem` — the snoop paths all degenerate.
    #[test]
    fn one_core_matches_memsystem() {
        let mut single = MemSystem::new(cfg());
        let mut smp = SmpMem::new(cfg(), 1);
        let mut now = 0;
        for i in 0..200u64 {
            let addr = 0x10_0000 + (i % 37) * 64 + (i % 3) * 0x4000;
            let path = match i % 4 {
                0 => Path::Normal,
                1 => Path::StreamL2,
                2 => Path::StreamMem,
                _ => Path::StreamL1,
            };
            let a = single.read_explained(addr, 7, now, path);
            let b = smp.read_explained(0, addr, 7, now, path);
            assert_eq!(a, b, "read {i}");
            let wa = single.write(addr + 0x100_0000, 9, now, path);
            let wb = smp.write(0, addr + 0x100_0000, 9, now, path);
            assert_eq!(wa, wb, "write {i}");
            let fa = single.write_full_line(addr + 0x200_0000, 9, now, path);
            let fb = smp.write_full_line(0, addr + 0x200_0000, 9, now, path);
            assert_eq!(fa, fb, "full-line {i}");
            now = a.ready.max(wa);
        }
        let s = single.stats();
        let c = smp.core_stats(0);
        assert_eq!(s, c);
        assert_eq!(smp.bus_transactions(), 0);
    }

    #[test]
    fn read_sharing_downgrades_exclusive_copies() {
        let mut smp = SmpMem::new(cfg(), 2);
        smp.read_explained(0, 0x8000, 1, 0, Path::Normal);
        assert_eq!(smp.cores[0].l1.state_of(0x200), MoesiState::Exclusive);
        let out = smp.read_explained(1, 0x8000, 1, 1000, Path::Normal);
        assert!(!out.from_snoop, "clean copy is served by the L2");
        assert_eq!(smp.cores[0].l1.state_of(0x200), MoesiState::Shared);
        assert_eq!(smp.cores[1].l1.state_of(0x200), MoesiState::Shared);
        assert_eq!(smp.snoop_stats(0).downgrades, 1);
        assert_eq!(smp.snoop_stats(0).snoops_received, 1);
        assert!(smp.snoop_stats(1).bus_transactions > 0);
        smp.check_coherence()
            .expect("single-writer invariant must hold");
    }

    #[test]
    fn owner_forwarding_serves_dirty_lines_cache_to_cache() {
        let mut smp = SmpMem::new(cfg(), 2);
        // Core 0 dirties the line (write-allocate).
        smp.write(0, 0x9000, 1, 0, Path::Normal);
        assert_eq!(smp.cores[0].l1.state_of(0x240), MoesiState::Modified);
        let dram_reads_before = smp.dram_stats().reads;
        let out = smp.read_explained(1, 0x9000, 2, 5000, Path::Normal);
        assert!(out.from_snoop, "dirty line must be forwarded");
        assert!(!out.from_dram);
        assert_eq!(smp.cores[0].l1.state_of(0x240), MoesiState::Owned);
        assert_eq!(smp.cores[1].l1.state_of(0x240), MoesiState::Shared);
        assert_eq!(smp.snoop_stats(1).owner_forwards, 1);
        // Owner forwarding bypasses DRAM entirely.
        assert_eq!(smp.dram_stats().reads, dram_reads_before);
        assert_eq!(smp.core_stats(1).profile.served_count(ServedBy::Remote), 1);
        smp.check_coherence()
            .expect("single-writer invariant must hold");
    }

    #[test]
    fn remote_write_invalidates_and_flushes_dirty_copies() {
        let mut smp = SmpMem::new(cfg(), 2);
        smp.write(0, 0xA000, 1, 0, Path::Normal); // core 0 holds Modified
        smp.write(1, 0xA000, 2, 5000, Path::Normal); // core 1 takes it over
        assert_eq!(smp.cores[0].l1.state_of(0x280), MoesiState::Invalid);
        assert_eq!(smp.cores[1].l1.state_of(0x280), MoesiState::Modified);
        assert_eq!(smp.snoop_stats(0).invalidations, 1);
        assert_eq!(smp.snoop_stats(0).dirty_writebacks, 1);
        smp.check_coherence()
            .expect("single-writer invariant must hold");
    }

    #[test]
    fn stream_l2_read_snoops_dirty_owner() {
        let mut smp = SmpMem::new(cfg(), 2);
        smp.write(0, 0xB000, 1, 0, Path::Normal);
        let out = smp.read_explained(1, 0xB000, 2, 4000, Path::StreamL2);
        assert!(out.from_snoop);
        assert_eq!(smp.cores[0].l1.state_of(0x2C0), MoesiState::Owned);
        smp.check_coherence()
            .expect("single-writer invariant must hold");
    }

    #[test]
    fn stream_l2_write_invalidates_remote_copies() {
        let mut smp = SmpMem::new(cfg(), 2);
        smp.read_explained(0, 0xC000, 1, 0, Path::Normal);
        smp.write(1, 0xC000, 2, 3000, Path::StreamL2);
        assert_eq!(smp.cores[0].l1.state_of(0x300), MoesiState::Invalid);
        assert_eq!(smp.snoop_stats(0).invalidations, 1);
        smp.check_coherence()
            .expect("single-writer invariant must hold");
    }

    #[test]
    fn per_core_dram_attribution_sums_to_shared_device() {
        let mut smp = SmpMem::new(cfg(), 4);
        let mut now = 0;
        for i in 0..256u64 {
            let core = (i % 4) as usize;
            let addr = 0x40_0000 + i * 64;
            let out = smp.read_explained(core, addr, 3, now, Path::Normal);
            smp.write(core, 0x80_0000 + i * 64, 4, now, Path::StreamL2);
            now = out.ready;
        }
        let shared = smp.dram_stats();
        let summed: u64 = (0..4).map(|c| smp.core_stats(c).dram.reads).sum();
        assert_eq!(summed, shared.reads);
        let summed_w: u64 = (0..4).map(|c| smp.core_stats(c).dram.writes).sum();
        assert_eq!(summed_w, shared.writes);
        // Per-core conservation laws (the same ones StatsReport::check
        // enforces on single-core rows).
        for c in 0..4 {
            let s = smp.core_stats(c);
            assert_eq!(s.profile.served_count(ServedBy::Dram), s.dram.reads);
            assert_eq!(
                s.profile.class_count(ReqClass::Demand) + s.profile.class_count(ReqClass::Stream),
                s.reads
            );
        }
        smp.check_coherence()
            .expect("single-writer invariant must hold");
    }

    #[test]
    fn fabricated_double_writer_is_detected() {
        let mut smp = SmpMem::new(cfg(), 2);
        // Bypass the protocol to fabricate an illegal state.
        smp.cores[0].l1.fill(0x111, true, 0);
        smp.cores[1].l1.fill(0x111, true, 0);
        let err = smp.check_coherence().unwrap_err();
        assert_eq!(err.line, 0x111);
        assert_eq!(err.holders.len(), 2);
        let msg = err.to_string();
        assert!(msg.contains("single-writer"), "{msg}");
    }

    #[test]
    fn prefetched_lines_respect_sharing() {
        // A line prefetched into one L1 while another L1 holds it must fill
        // Shared, not Exclusive (the prefetcher is a bus agent too).
        let mut smp = SmpMem::new(cfg(), 2);
        let mut now = 0;
        // Train core 0's stride prefetcher on a sequential walk.
        for i in 0..32u64 {
            now = smp
                .read_explained(0, 0x60_0000 + i * 64, 42, now, Path::Normal)
                .ready;
        }
        // Core 1 touches lines ahead of core 0's stream.
        for i in 32..64u64 {
            smp.read_explained(1, 0x60_0000 + i * 64, 43, now, Path::Normal);
        }
        // Keep walking: core 0's prefetches now cover remotely-held lines.
        for i in 32..64u64 {
            now = smp
                .read_explained(0, 0x60_0000 + i * 64, 42, now, Path::Normal)
                .ready;
        }
        smp.check_coherence()
            .expect("single-writer invariant must hold");
    }
}
