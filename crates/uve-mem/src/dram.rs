//! Analytic DRAM model: fixed access latency plus per-channel bandwidth
//! occupancy (dual-channel DDR3-1600 of Table I).

use crate::cache::LINE_BYTES;

/// DRAM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of independent channels (Table I: dual channel).
    pub channels: usize,
    /// Sustained bytes per CPU cycle per channel. DDR3-1600 delivers
    /// 12.8 GB/s per channel; at the 1.5 GHz core clock that is ≈8.53 B per
    /// cycle.
    pub bytes_per_cycle_per_channel: f64,
    /// Fixed access latency in CPU cycles (row activation + CAS + on-chip
    /// traversal): ≈45 ns at the 1.5 GHz core clock.
    pub latency: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            channels: 2,
            bytes_per_cycle_per_channel: 12.8e9 / 1.5e9,
            latency: 70,
        }
    }
}

/// Traffic counters of the memory bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Bytes read from DRAM.
    pub read_bytes: u64,
    /// Bytes written to DRAM.
    pub write_bytes: u64,
    /// Number of read transactions.
    pub reads: u64,
    /// Number of write transactions.
    pub writes: u64,
}

/// The DRAM timing model.
///
/// Each line transfer occupies the channel selected by address interleaving
/// for `LINE_BYTES / bytes_per_cycle` cycles; the completion time is the
/// occupancy end plus the fixed latency. This is exactly the level of detail
/// the paper's *memory bus utilization* metric (Fig. 8.D) measures:
/// `(ReadBW + WriteBW) / PeakBW`.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    channel_free: Vec<u64>,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM model.
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            channel_free: vec![0; cfg.channels],
            cfg,
            stats: DramStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Traffic statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Cycles one line transfer occupies a channel.
    fn transfer_cycles(&self) -> u64 {
        (LINE_BYTES as f64 / self.cfg.bytes_per_cycle_per_channel).ceil() as u64
    }

    /// Requests a line read; returns the cycle the data arrives at the chip.
    pub fn read(&mut self, line_addr: u64, now: u64) -> u64 {
        self.stats.reads += 1;
        self.stats.read_bytes += LINE_BYTES;
        self.schedule(line_addr, now) + self.cfg.latency
    }

    /// Requests a line writeback; returns the cycle the transfer completes.
    /// Writes are posted (the requester need not wait), but they consume
    /// channel bandwidth.
    pub fn write(&mut self, line_addr: u64, now: u64) -> u64 {
        self.stats.writes += 1;
        self.stats.write_bytes += LINE_BYTES;
        self.schedule(line_addr, now)
    }

    fn schedule(&mut self, line_addr: u64, now: u64) -> u64 {
        let ch = (line_addr as usize) % self.cfg.channels;
        let start = self.channel_free[ch].max(now);
        let done = start + self.transfer_cycles();
        self.channel_free[ch] = done;
        done
    }

    /// Peak bandwidth in bytes per cycle across all channels.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.cfg.bytes_per_cycle_per_channel * self.cfg.channels as f64
    }

    /// Bus utilization over `cycles` executed cycles:
    /// `(read + write bytes) / (peak bandwidth × cycles)`.
    pub fn utilization(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        (self.stats.read_bytes + self.stats.write_bytes) as f64
            / (self.peak_bytes_per_cycle() * cycles as f64)
    }

    /// Resets traffic statistics and channel occupancy.
    pub fn reset(&mut self) {
        self.stats = DramStats::default();
        self.channel_free.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_latency_and_bandwidth() {
        let mut d = Dram::new(DramConfig::default());
        let t1 = d.read(0, 0);
        assert!(t1 >= 70);
        // Same channel back-to-back: second transfer queues.
        let t2 = d.read(2, 0);
        assert!(t2 > t1);
        // Other channel: no queueing.
        let t3 = d.read(1, 0);
        assert_eq!(t3, t1);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Dram::new(DramConfig::default());
        d.read(0, 0);
        d.write(1, 0);
        assert_eq!(d.stats().read_bytes, 64);
        assert_eq!(d.stats().write_bytes, 64);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn utilization_bounded() {
        let mut d = Dram::new(DramConfig::default());
        for i in 0..100 {
            d.read(i, 0);
        }
        let transfer = (64.0 / d.config().bytes_per_cycle_per_channel).ceil() as u64;
        let busy = 50 * transfer; // 50 lines per channel
        let u = d.utilization(busy);
        assert!(u > 0.5 && u <= 1.05, "{u}");
    }

    #[test]
    fn reset_clears() {
        let mut d = Dram::new(DramConfig::default());
        d.read(0, 0);
        d.reset();
        assert_eq!(d.stats(), DramStats::default());
        assert_eq!(d.utilization(100), 0.0);
    }
}
