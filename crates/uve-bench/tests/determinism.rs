//! The runner's determinism contract: a parallel sharded run must produce
//! the *same* `Vec<Measured>` — same order, same committed counts, same
//! cycle counts, bit-identical derived numbers — as the `--serial`
//! baseline, and a cached-trace replay must equal a fresh-emulation
//! replay.

use uve_bench::{measure_with, Job, Runner};
use uve_core::engine::EngineConfig;
use uve_cpu::CpuConfig;
use uve_isa::MemLevel;
use uve_kernels::{gemm::Gemm, jacobi::Jacobi1d, saxpy::Saxpy, Benchmark, Flavor};

/// A small 3-kernel subset (kept cheap: this runs under `cargo test`).
fn subset() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Saxpy::new(2048)),
        Box::new(Gemm::new(8, 16, 8)),
        Box::new(Jacobi1d::new(1024, 2)),
    ]
}

/// A sweep over the subset: two flavours × two timing configurations, so
/// the trace cache is exercised (each kernel point replayed twice).
fn jobs(benches: &[Box<dyn Benchmark>]) -> Vec<Job<'_>> {
    let mut jobs = Vec::new();
    for bench in benches {
        for flavor in [Flavor::Uve, Flavor::Sve] {
            for fifo_depth in [4usize, 8] {
                let cpu = CpuConfig {
                    engine: EngineConfig {
                        fifo_depth,
                        ..EngineConfig::default()
                    },
                    ..CpuConfig::default()
                };
                jobs.push(Job::new(bench.as_ref(), flavor, cpu));
            }
        }
    }
    jobs
}

#[test]
fn parallel_and_serial_runs_are_bit_identical() {
    let benches = subset();
    let serial = Runner::serial();
    let parallel = Runner::parallel(4);

    let a = serial.run(&jobs(&benches));
    let b = parallel.run(&jobs(&benches));

    assert_eq!(a.len(), b.len());
    for (i, (s, p)) in a.iter().zip(&b).enumerate() {
        assert_eq!(s.name, p.name, "job {i}: ordering must match submission");
        assert_eq!(s.flavor, p.flavor, "job {i}");
        assert_eq!(s.committed, p.committed, "job {i}: committed");
        assert_eq!(s.stats.cycles, p.stats.cycles, "job {i}: cycles");
        assert_eq!(
            s.stats.rename_blocked_cycles, p.stats.rename_blocked_cycles,
            "job {i}: rename stalls"
        );
        assert_eq!(
            s.stats.branch_mispredicts, p.stats.branch_mispredicts,
            "job {i}: mispredicts"
        );
        assert_eq!(
            s.stats.mem.dram.reads, p.stats.mem.dram.reads,
            "job {i}: DRAM reads"
        );
        assert_eq!(
            s.stats.bus_utilization.to_bits(),
            p.stats.bus_utilization.to_bits(),
            "job {i}: bus utilization must be bit-identical"
        );
    }

    // Trace reuse: 3 kernels × 2 flavours = 6 functional points, 12 jobs.
    // Both runners must emulate each point exactly once.
    assert_eq!(serial.emulations(), 6);
    assert_eq!(parallel.emulations(), 6);
}

#[test]
fn cached_replay_equals_fresh_emulation_replay() {
    let bench = Saxpy::new(2048);
    let cpu = CpuConfig::default();
    let runner = Runner::parallel(2);

    // First run emulates and caches; second run replays the cached trace.
    let job = || vec![Job::new(&bench, Flavor::Uve, cpu.clone())];
    let first = runner.run(&job());
    assert_eq!(runner.emulations(), 1);
    let second = runner.run(&job());
    assert_eq!(
        runner.emulations(),
        1,
        "second run must hit the trace cache"
    );

    // And both must equal the uncached one-shot measurement path.
    let fresh = measure_with(&bench, Flavor::Uve, &cpu, MemLevel::L2);

    for m in [&first[0], &second[0]] {
        assert_eq!(m.committed, fresh.committed);
        assert_eq!(m.stats.cycles, fresh.stats.cycles);
        assert_eq!(
            m.stats.bus_utilization.to_bits(),
            fresh.stats.bus_utilization.to_bits()
        );
    }
}

#[test]
fn stream_level_is_part_of_the_trace_identity() {
    // Fig. 11 sweeps the stream level, which changes the functional trace:
    // each level must be its own cache entry, not a stale reuse.
    let bench = Saxpy::new(2048);
    let cpu = CpuConfig::default();
    let runner = Runner::serial();
    let levels = [MemLevel::L1, MemLevel::L2, MemLevel::Mem];
    let jobs: Vec<Job> = levels
        .iter()
        .map(|&level| Job {
            stream_level: level,
            ..Job::new(&bench, Flavor::Uve, cpu.clone())
        })
        .collect();
    let out = runner.run(&jobs);
    assert_eq!(runner.emulations(), levels.len() as u64);
    // Levels change timing; DRAM-direct streaming must differ from L2.
    assert_ne!(out[1].stats.cycles, out[2].stats.cycles);
}
