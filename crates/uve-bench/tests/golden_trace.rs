//! Golden-snapshot test of the Chrome trace exporter.
//!
//! The committed `tests/golden/saxpy_tiny_trace.json` is the exact export
//! of one cold 64-element SAXPY/UVE run. Any change to the emulator, the
//! timing model, the event capture, or the JSON rendering that alters the
//! trace shows up here as a diff; regenerate deliberately with
//!
//! ```text
//! cargo run --release --bin trace -- --tiny-saxpy \
//!     --out crates/uve-bench/tests/golden/saxpy_tiny_trace.json
//! ```

use uve_bench::tiny_saxpy_trace;

const GOLDEN: &str = include_str!("golden/saxpy_tiny_trace.json");

#[test]
fn tiny_saxpy_trace_matches_golden_snapshot() {
    let fresh = tiny_saxpy_trace();
    if fresh == GOLDEN {
        return;
    }
    // Point at the first diverging line instead of dumping 5 KB twice.
    for (i, (f, g)) in fresh.lines().zip(GOLDEN.lines()).enumerate() {
        assert_eq!(
            f,
            g,
            "trace diverges from golden snapshot at line {} — if intended, \
             regenerate with `cargo run --bin trace -- --tiny-saxpy --out \
             crates/uve-bench/tests/golden/saxpy_tiny_trace.json`",
            i + 1
        );
    }
    panic!(
        "trace length changed: fresh {} lines vs golden {} lines — \
         regenerate the snapshot if intended",
        fresh.lines().count(),
        GOLDEN.lines().count()
    );
}
