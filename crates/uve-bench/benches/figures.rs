//! `cargo bench --bench figures` regenerates every table and figure of the
//! paper's evaluation (Figs. 8–11, Sec. VI-B/VI-C). Not a Criterion
//! harness: the output *is* the artifact.

fn main() {
    // Criterion passes `--bench`; any other filter argument selects a
    // subset by name.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| {
        let filters: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
        filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
    };
    if want("fig8") {
        uve_bench::figures::fig8(None);
    }
    if want("fig9") {
        uve_bench::figures::fig9();
    }
    if want("fig10") {
        uve_bench::figures::fig10();
    }
    if want("fig11") {
        uve_bench::figures::fig11();
    }
    if want("modules") {
        uve_bench::figures::modules();
    }
    if want("overheads") {
        uve_bench::figures::overheads();
    }
}
