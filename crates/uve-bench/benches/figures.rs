//! `cargo bench --bench figures` regenerates every table and figure of the
//! paper's evaluation (Figs. 8–11, Sec. VI-B/VI-C). Not a Criterion
//! harness: the output *is* the artifact.
//!
//! One shared [`uve_bench::Runner`] serves every figure, so the
//! sensitivity sweeps reuse the functional traces the Fig. 8 suite already
//! emulated. `--jobs N`/`--serial`/`--quiet` are honoured.

fn main() {
    // Criterion passes `--bench`; any other non-flag argument selects a
    // subset by name.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| {
        let filters: Vec<&String> = args
            .iter()
            .filter(|a| !a.starts_with('-') && a.parse::<usize>().is_err())
            .collect();
        filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
    };
    let runner = uve_bench::Runner::from_args();
    if want("fig8") {
        uve_bench::figures::fig8(None, &runner);
    }
    if want("fig9") {
        uve_bench::figures::fig9(&runner);
    }
    if want("fig10") {
        uve_bench::figures::fig10(&runner);
    }
    if want("fig11") {
        uve_bench::figures::fig11(&runner);
    }
    if want("modules") {
        uve_bench::figures::modules(&runner);
    }
    if want("overheads") {
        uve_bench::figures::overheads();
    }
}
