//! Criterion micro-benchmarks of the simulator itself: emulation
//! throughput, timing-model throughput, address-generator throughput, and
//! the ISA tooling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use uve_bench::measure;
use uve_core::{EmuConfig, Emulator};
use uve_cpu::{CpuConfig, OoOCore};
use uve_isa::{assemble, decode, encode};
use uve_kernels::{saxpy::Saxpy, Benchmark, Flavor};
use uve_mem::Memory;
use uve_stream::{ElemWidth, NoMemory, Pattern, Walker};

fn bench_emulator(c: &mut Criterion) {
    let bench = Saxpy::new(4096);
    let prog = bench.program(Flavor::Uve);
    let mut g = c.benchmark_group("emulator");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("saxpy-uve-4096", |b| {
        b.iter(|| {
            let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
            bench.setup(&mut emu);
            emu.run(&prog).unwrap()
        });
    });
    g.finish();
}

fn bench_timing_model(c: &mut Criterion) {
    let bench = Saxpy::new(4096);
    let prog = bench.program(Flavor::Uve);
    let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
    bench.setup(&mut emu);
    let trace = emu.run(&prog).unwrap().trace;
    let core = OoOCore::new(CpuConfig::default());
    let mut g = c.benchmark_group("timing");
    g.throughput(Throughput::Elements(trace.committed()));
    g.bench_function("ooo-saxpy-trace", |b| b.iter(|| core.run(&trace)));
    g.finish();
}

fn bench_walker(c: &mut Criterion) {
    let pattern = Pattern::builder(0, ElemWidth::Word)
        .dim(0, 1024, 1)
        .dim(0, 256, 1024)
        .build()
        .unwrap();
    let mut g = c.benchmark_group("walker");
    g.throughput(Throughput::Elements(1024 * 256));
    g.bench_function("2d-262144-elems", |b| {
        b.iter(|| {
            let mut w = Walker::new(&pattern);
            let mut n = 0u64;
            while w.next_elem(&NoMemory).is_some() {
                n += 1;
            }
            n
        });
    });
    g.finish();
}

fn bench_isa_tools(c: &mut Criterion) {
    let bench = Saxpy::new(1024);
    let prog = bench.program(Flavor::Sve);
    c.bench_function("encode-decode-program", |b| {
        b.iter(|| {
            prog.insts()
                .iter()
                .enumerate()
                .map(|(pc, i)| {
                    let w = encode(i, pc as u32).unwrap();
                    decode(w, pc as u32).unwrap()
                })
                .count()
        });
    });
    let text = "
    li x10, 4096
    li x11, 0x100000
    li x12, 0x200000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    ss.ld.w u1, x12, x10, x13
    ss.st.w u2, x12, x10, x13
    so.v.dup.w.fp u3, f10
loop:
    so.a.mul.w.fp u4, u3, u0, p0
    so.a.add.w.fp u2, u4, u1, p0
    so.b.nend u0, loop
    halt
";
    c.bench_function("assemble-saxpy", |b| {
        b.iter(|| assemble("saxpy", text).unwrap())
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let cpu = CpuConfig::default();
    c.bench_function("measure-saxpy-uve-1024", |b| {
        b.iter(|| measure(&Saxpy::new(1024), Flavor::Uve, &cpu))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_emulator, bench_timing_model, bench_walker, bench_isa_tools, bench_end_to_end
}
criterion_main!(benches);
