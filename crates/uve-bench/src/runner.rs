//! The parallel sharded evaluation runner with functional-trace reuse.
//!
//! The evaluation decouples *functional* emulation (which produces a
//! dynamic [`Trace`]) from *timing* replay (the out-of-order model), the
//! same access/execute split the architecture itself makes. Only the
//! timing side depends on the CPU configuration, so the sensitivity sweeps
//! (Figs. 9–11, Sec. VI-B) need exactly one emulation per
//! `(kernel, flavor, vlen, stream level)` point, replayed under N timing
//! configurations — not N re-emulations.
//!
//! Two mechanisms deliver that:
//!
//! - a [`TraceKey`]-indexed cache of emulated traces, with per-key
//!   once-initialization so concurrent workers never emulate the same
//!   point twice (an emulation counter makes this assertable);
//! - a std-only scoped worker pool ([`std::thread::scope`]) pulling
//!   [`Job`]s from a shared `Mutex<VecDeque<_>>`, one worker per core by
//!   default ([`std::thread::available_parallelism`]).
//!
//! Determinism: traces are plain data (`Trace: Send + Sync`), emulation is
//! deterministic, and [`OoOCore::run_warm`] builds all mutable state
//! (memory hierarchy, predictor, Streaming Engine) per call from `&Trace`
//! — there are no hidden mutable globals. Results are written back by
//! submission index, so a parallel run returns the *same* `Vec<Measured>`,
//! in the same order with bit-identical numbers, as `--serial`.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::pool::{panic_message, pop};
use crate::Measured;
use uve_core::{EmuConfig, ExecMode, IndirectPacking, StreamFaultPlan, Trace};
use uve_cpu::{CpuConfig, OoOCore};
use uve_isa::MemLevel;
use uve_kernels::{Benchmark, Flavor};
use uve_mem::Memory;

/// Page-fault injection rate used when a job carries a nonzero
/// `fault_seed`: roughly one in this many first-touched stream pages
/// faults (see [`StreamFaultPlan`]).
pub const SWEEP_FAULT_RATE: u64 = 3;

/// One unit of evaluation work: emulate (or fetch the cached trace of)
/// `bench` in `flavor` at `stream_level`, then replay it under `cpu`.
pub struct Job<'a> {
    /// The kernel to measure.
    pub bench: &'a dyn Benchmark,
    /// Code flavour (fixes the vector length).
    pub flavor: Flavor,
    /// Timing-model configuration for the replay.
    pub cpu: CpuConfig,
    /// Memory level streams default to (affects the functional trace).
    pub stream_level: MemLevel,
    /// Indirect-stream chunking mode (affects the functional trace).
    pub packing: IndirectPacking,
    /// Execution strategy for the functional emulation (bit-identical
    /// traces either way; part of the cache key regardless).
    pub exec: ExecMode,
    /// Stream page-fault plan seed (0 disables injection; a nonzero seed
    /// faults ~1/[`SWEEP_FAULT_RATE`] first-touched pages and recovers
    /// precisely, so the final state stays bit-identical).
    pub fault_seed: u64,
}

impl<'a> Job<'a> {
    /// A job at the paper's default L2 stream level, packed indirect
    /// chunking, interpreted execution, and no fault injection.
    pub fn new(bench: &'a dyn Benchmark, flavor: Flavor, cpu: CpuConfig) -> Self {
        Self {
            bench,
            flavor,
            cpu,
            stream_level: MemLevel::L2,
            packing: IndirectPacking::default(),
            exec: ExecMode::default(),
            fault_seed: 0,
        }
    }

    /// The same job under the given execution mode (builder style).
    #[must_use]
    pub fn exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// The trace-cache key this job resolves to.
    pub fn key(&self) -> TraceKey {
        TraceKey::of_full(
            self.bench,
            self.flavor,
            self.stream_level,
            self.packing,
            self.exec,
            self.fault_seed,
        )
    }
}

/// Cache key of a functional trace: everything emulation depends on.
///
/// The program fingerprint covers kernel parameters (sizes, unroll
/// factors) that `name()` alone does not distinguish — e.g. the Fig. 8.E
/// `GEMM-unrolled` instances share a name but differ per unroll factor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Kernel name.
    pub kernel: &'static str,
    /// Code flavour.
    pub flavor: Flavor,
    /// Vector length in bytes (implied by the flavour, kept explicit).
    pub vlen: usize,
    /// Default stream memory level.
    pub stream_level: MemLevel,
    /// Indirect-stream chunking mode.
    pub packing: IndirectPacking,
    /// Execution strategy the trace was produced under.
    pub exec: ExecMode,
    /// Stream fault-plan seed the trace was emulated under (0 = clean).
    pub fault_seed: u64,
    /// Fingerprint of the flavour's program (captures kernel parameters).
    pub program: u64,
}

impl TraceKey {
    /// The key of `(bench, flavor, stream_level, packing)` under
    /// interpreted, fault-free emulation.
    pub fn of(
        bench: &dyn Benchmark,
        flavor: Flavor,
        stream_level: MemLevel,
        packing: IndirectPacking,
    ) -> Self {
        Self::of_full(bench, flavor, stream_level, packing, ExecMode::default(), 0)
    }

    /// The fully qualified key: everything the functional emulation of a
    /// job depends on. This is the trace half of the content address the
    /// distributed sweep cache (`uve-sweep`) keys results by.
    ///
    /// The program fingerprint is [`uve_core::program_fingerprint`] —
    /// FNV-1a over the canonical instruction-word encoding — so it is
    /// stable across builds and machines, which is what lets the sweep
    /// service persist its result cache to disk and reload it after a
    /// restart (or a rebuild). Golden values are pinned in
    /// `tests/fingerprint_golden.rs`.
    pub fn of_full(
        bench: &dyn Benchmark,
        flavor: Flavor,
        stream_level: MemLevel,
        packing: IndirectPacking,
        exec: ExecMode,
        fault_seed: u64,
    ) -> Self {
        Self {
            kernel: bench.name(),
            flavor,
            vlen: flavor.vlen_bytes(),
            stream_level,
            packing,
            exec,
            fault_seed,
            program: uve_core::program_fingerprint(&bench.program(flavor)),
        }
    }
}

/// An emulated, correctness-checked functional trace.
#[derive(Debug)]
pub struct CachedTrace {
    /// The dynamic trace.
    pub trace: Trace,
    /// Committed dynamic instructions.
    pub committed: u64,
}

/// Emulates `bench`/`flavor` at `stream_level` and verifies the result
/// against the kernel's oracle.
///
/// # Panics
///
/// Panics if the kernel mis-executes or fails its correctness check —
/// measurement of an incorrect run would be meaningless.
pub fn emulate_trace(bench: &dyn Benchmark, flavor: Flavor, stream_level: MemLevel) -> CachedTrace {
    emulate_trace_with(bench, flavor, stream_level, IndirectPacking::default())
}

/// [`emulate_trace`] with an explicit [`IndirectPacking`] mode for the
/// packed-vs-unpacked ablation.
///
/// # Panics
///
/// As [`emulate_trace`].
pub fn emulate_trace_with(
    bench: &dyn Benchmark,
    flavor: Flavor,
    stream_level: MemLevel,
    packing: IndirectPacking,
) -> CachedTrace {
    emulate_trace_full(bench, flavor, stream_level, packing, ExecMode::default(), 0)
}

/// [`emulate_trace`] with every functional knob explicit: chunking mode,
/// execution strategy, and an optional stream fault-plan seed (0 = clean;
/// nonzero seeds fault ~1/[`SWEEP_FAULT_RATE`] first-touched pages and
/// recover precisely). This is the single emulation entry point of the
/// distributed sweep worker.
///
/// # Panics
///
/// As [`emulate_trace`].
pub fn emulate_trace_full(
    bench: &dyn Benchmark,
    flavor: Flavor,
    stream_level: MemLevel,
    packing: IndirectPacking,
    exec: ExecMode,
    fault_seed: u64,
) -> CachedTrace {
    let emu_cfg = EmuConfig {
        vlen_bytes: flavor.vlen_bytes(),
        stream_level,
        packing,
        exec,
        ..EmuConfig::default()
    };
    let mut emu = uve_core::Emulator::new(emu_cfg, Memory::new());
    if fault_seed != 0 {
        emu.set_fault_plan(Some(StreamFaultPlan::new(fault_seed, SWEEP_FAULT_RATE)));
    }
    bench.setup(&mut emu);
    let program = bench.program(flavor);
    let result = emu
        .run(&program)
        .unwrap_or_else(|e| panic!("{}/{flavor}: {e}", bench.name()));
    bench
        .check(&emu)
        .unwrap_or_else(|e| panic!("{}/{flavor}: {e}", bench.name()));
    CachedTrace {
        trace: result.trace,
        committed: result.committed,
    }
}

/// Replays a cached trace under `cpu` (warm-run methodology) and packages
/// the result.
pub fn replay(name: &str, flavor: Flavor, cached: &CachedTrace, cpu: &CpuConfig) -> Measured {
    let stats = OoOCore::new(cpu.clone()).run_warm(&cached.trace);
    Measured {
        name: name.to_string(),
        flavor,
        committed: cached.committed,
        stats,
    }
}

#[derive(Default)]
struct TraceCache {
    map: Mutex<HashMap<TraceKey, Arc<OnceLock<Arc<CachedTrace>>>>>,
    emulations: AtomicU64,
}

impl TraceCache {
    /// Returns the trace for `(bench, flavor, stream_level)`, emulating at
    /// most once per key even under concurrent lookups (late arrivals
    /// block on the key's `OnceLock` instead of re-emulating).
    fn get(
        &self,
        bench: &dyn Benchmark,
        flavor: Flavor,
        stream_level: MemLevel,
        packing: IndirectPacking,
        exec: ExecMode,
        fault_seed: u64,
    ) -> Arc<CachedTrace> {
        let cell = {
            let mut map = self.map.lock().expect("trace cache poisoned");
            Arc::clone(
                map.entry(TraceKey::of_full(
                    bench,
                    flavor,
                    stream_level,
                    packing,
                    exec,
                    fault_seed,
                ))
                .or_default(),
            )
        };
        let trace = cell.get_or_init(|| {
            self.emulations.fetch_add(1, Ordering::Relaxed);
            Arc::new(emulate_trace_full(
                bench,
                flavor,
                stream_level,
                packing,
                exec,
                fault_seed,
            ))
        });
        Arc::clone(trace)
    }
}

/// One job that panicked or hit its wall-clock timeout during a sweep.
///
/// Captures everything needed to reproduce the failure in isolation.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Submission index of the failed job.
    pub index: usize,
    /// Kernel name.
    pub kernel: String,
    /// Code flavour.
    pub flavor: Flavor,
    /// Vector length in bytes.
    pub vlen: usize,
    /// Default stream memory level.
    pub stream_level: MemLevel,
    /// The panic message (or timeout marker) that killed the job.
    pub reason: String,
}

impl JobFailure {
    /// A one-line reproduction recipe for this failure.
    #[must_use]
    pub fn repro(&self) -> String {
        format!(
            "repro: kernel={} flavor={} vlen={} level={:?} :: {}",
            self.kernel, self.flavor, self.vlen, self.stream_level, self.reason
        )
    }

    /// Whether the job died by wall-clock timeout (vs a model panic).
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        self.reason.contains(uve_core::deadline::TIMEOUT_MARKER)
    }
}

/// How many workers the runner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Strictly sequential on the calling thread (`--serial`).
    Serial,
    /// A scoped pool of N worker threads (`--jobs N`).
    Parallel(usize),
}

/// Per-job wall-clock budget before the cooperative deadline fires
/// (see [`uve_core::deadline`]).
pub const DEFAULT_JOB_TIMEOUT: Duration = Duration::from_secs(600);

/// The sharded evaluation runner.
pub struct Runner {
    mode: RunMode,
    verbose: bool,
    explain: bool,
    exec: ExecMode,
    timeout: Option<Duration>,
    failures: Mutex<Vec<JobFailure>>,
    cache: TraceCache,
}

impl Runner {
    /// A strictly serial runner (the determinism baseline).
    pub fn serial() -> Self {
        Self {
            mode: RunMode::Serial,
            verbose: false,
            explain: false,
            exec: ExecMode::default(),
            timeout: Some(DEFAULT_JOB_TIMEOUT),
            failures: Mutex::new(Vec::new()),
            cache: TraceCache::default(),
        }
    }

    /// A parallel runner with `jobs` workers (clamped to ≥ 1).
    pub fn parallel(jobs: usize) -> Self {
        Self {
            mode: RunMode::Parallel(jobs.max(1)),
            ..Self::serial()
        }
    }

    /// A parallel runner with one worker per available core.
    pub fn auto() -> Self {
        Self::parallel(default_jobs())
    }

    /// Builds a runner from process arguments: `--serial` forces the
    /// sequential baseline, `--jobs N` sets the worker count, `--quiet`
    /// silences per-job wall-clock reporting, `--explain` appends the
    /// cycle-attribution report to every figure, `--timeout SECS` sets the
    /// per-job wall-clock budget (0 disables it; default 600 s),
    /// `--exec-mode interpret|translated` picks the functional execution
    /// strategy (bit-identical results; translated is faster). Default:
    /// one worker per core, reporting on, no explain, interpreted.
    /// Unrecognized arguments are ignored so the figure binaries can keep
    /// their own flags.
    pub fn from_args() -> Self {
        Self::from_cli(&crate::Cli::parse())
    }

    /// [`Runner::from_args`] over an already-parsed [`Cli`](crate::Cli) —
    /// for binaries that also read their own flags from the same parse.
    pub fn from_cli(cli: &crate::Cli) -> Self {
        let mut runner = if cli.has("--serial") {
            Self::serial()
        } else {
            Self::parallel(cli.parsed("--jobs").unwrap_or_else(default_jobs))
        };
        runner.verbose = !cli.has("--quiet");
        runner.explain = cli.has("--explain");
        if let Some(mode) = cli.value("--exec-mode") {
            runner.exec = parse_exec_mode(mode).unwrap_or_else(|| {
                panic!("bad --exec-mode {mode:?}: expected interpret or translated")
            });
        }
        if let Some(secs) = cli.parsed::<u64>("--timeout") {
            runner.timeout = (secs > 0).then(|| Duration::from_secs(secs));
        }
        runner
    }

    /// Enables or disables per-job wall-clock reporting on stderr.
    pub fn verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    /// Enables or disables the `--explain` cycle-attribution report.
    pub fn explain(mut self, explain: bool) -> Self {
        self.explain = explain;
        self
    }

    /// Sets the functional execution strategy used by
    /// [`Runner::trace`]/[`Runner::trace_with`] (builder style).
    #[must_use]
    pub fn exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// The execution strategy this runner emulates traces under
    /// (`--exec-mode`; figure generators stamp it onto their jobs).
    pub fn exec_mode(&self) -> ExecMode {
        self.exec
    }

    /// Sets the per-job wall-clock budget (`None` disables timeouts).
    pub fn timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// When `--explain` is on, validates the conservation laws of every
    /// measurement and prints the "where the cycles go" report; a no-op
    /// otherwise. Figure generators call this right after
    /// [`Runner::run`].
    ///
    /// # Panics
    ///
    /// Panics if any conservation law is violated — an unexplained cycle
    /// means the attribution (or the model) is wrong, and the report would
    /// be misleading.
    pub fn maybe_explain(&self, results: &[Measured]) {
        if !self.explain {
            return;
        }
        let report = crate::StatsReport::of(results);
        report.check().expect("cycle-accounting conservation");
        print!("{}", report.render());
    }

    /// The runner's mode.
    pub fn mode(&self) -> RunMode {
        self.mode
    }

    /// Number of functional emulations performed so far — the trace-reuse
    /// observable: a sweep of N timing configurations over K kernel points
    /// must raise this by at most K.
    pub fn emulations(&self) -> u64 {
        self.cache.emulations.load(Ordering::Relaxed)
    }

    /// The cached trace for an evaluation point, emulating it on first use
    /// (shared with jobs run later).
    pub fn trace(
        &self,
        bench: &dyn Benchmark,
        flavor: Flavor,
        stream_level: MemLevel,
    ) -> Arc<CachedTrace> {
        self.cache.get(
            bench,
            flavor,
            stream_level,
            IndirectPacking::default(),
            self.exec,
            0,
        )
    }

    /// [`Runner::trace`] with an explicit [`IndirectPacking`] mode, for
    /// the packed-vs-unpacked ablation.
    pub fn trace_with(
        &self,
        bench: &dyn Benchmark,
        flavor: Flavor,
        stream_level: MemLevel,
        packing: IndirectPacking,
    ) -> Arc<CachedTrace> {
        self.cache
            .get(bench, flavor, stream_level, packing, self.exec, 0)
    }

    /// [`Runner::trace`] with every functional knob explicit — the
    /// distributed sweep worker's cache entry point.
    pub fn trace_full(
        &self,
        bench: &dyn Benchmark,
        flavor: Flavor,
        stream_level: MemLevel,
        packing: IndirectPacking,
        exec: ExecMode,
        fault_seed: u64,
    ) -> Arc<CachedTrace> {
        self.cache
            .get(bench, flavor, stream_level, packing, exec, fault_seed)
    }

    /// Warms the trace cache for `points` using the worker pool; later
    /// [`Runner::trace`]/[`Runner::run`] calls on the same points are pure
    /// cache hits.
    ///
    /// Each emulation runs under the same panic isolation and deadline as
    /// a sweep job: a point that fails to emulate is recorded in
    /// [`Runner::failures`] instead of taking the warm-up down. Callers
    /// that go on to use [`Runner::trace`] directly should bail out first
    /// if [`Runner::finish`] reports failures.
    pub fn warm_traces(&self, points: &[(&dyn Benchmark, Flavor, MemLevel)]) {
        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..points.len()).collect());
        self.pooled(points.len(), &|| {
            while let Some(i) = pop(&queue) {
                let (bench, flavor, level) = points[i];
                uve_core::deadline::arm(self.timeout);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.cache.get(
                        bench,
                        flavor,
                        level,
                        IndirectPacking::default(),
                        self.exec,
                        0,
                    );
                }));
                uve_core::deadline::disarm();
                if let Err(payload) = outcome {
                    let failure = JobFailure {
                        index: i,
                        kernel: bench.name().to_string(),
                        flavor,
                        vlen: flavor.vlen_bytes(),
                        stream_level: level,
                        reason: panic_message(payload),
                    };
                    eprintln!("[warm {i:>3}] FAILED: {}", failure.repro());
                    self.failures
                        .lock()
                        .expect("failure log poisoned")
                        .push(failure);
                }
            }
        });
    }

    /// Runs every job and returns the measurements **in submission order**,
    /// independent of worker scheduling. Serial and parallel modes produce
    /// bit-identical results.
    pub fn run(&self, jobs: &[Job<'_>]) -> Vec<Measured> {
        let t0 = Instant::now();
        let results: Vec<Mutex<Option<Measured>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..jobs.len()).collect());
        let job_nanos = AtomicU64::new(0);

        let worker = || {
            while let Some(i) = pop(&queue) {
                let job = &jobs[i];
                let jt = Instant::now();
                let m = self.run_one(i, job);
                let elapsed = jt.elapsed();
                job_nanos.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
                if self.verbose {
                    eprintln!(
                        "[job {i:>3}] {:<16} {:<6} {:>9.1} ms",
                        job.bench.name(),
                        job.flavor.to_string(),
                        elapsed.as_secs_f64() * 1e3,
                    );
                }
                *results[i].lock().expect("result slot poisoned") = Some(m);
            }
        };
        self.pooled(jobs.len(), &worker);

        let wall = t0.elapsed().as_secs_f64();
        let agg = job_nanos.load(Ordering::Relaxed) as f64 * 1e-9;
        if self.verbose && !jobs.is_empty() {
            let workers = match self.mode {
                RunMode::Serial => 1,
                RunMode::Parallel(n) => n,
            };
            eprintln!(
                "[runner] {} job(s) on {workers} worker(s): {wall:.2} s wall, \
                 {agg:.2} s aggregate ({:.2}x), {} emulation(s)",
                jobs.len(),
                if wall > 0.0 { agg / wall } else { 1.0 },
                self.emulations(),
            );
        }
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker completed every job")
            })
            .collect()
    }

    /// Evaluates one job under panic isolation and a cooperative deadline.
    ///
    /// A panicking or timed-out job yields a placeholder measurement
    /// (`"<kernel> [FAILED]"` with zeroed stats, which trivially satisfies
    /// the conservation laws) and is recorded in [`Runner::failures`] —
    /// the rest of the sweep keeps running and the figure still renders.
    fn run_one(&self, index: usize, job: &Job<'_>) -> Measured {
        uve_core::deadline::arm(self.timeout);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let cached = self.cache.get(
                job.bench,
                job.flavor,
                job.stream_level,
                job.packing,
                job.exec,
                job.fault_seed,
            );
            replay(job.bench.name(), job.flavor, &cached, &job.cpu)
        }));
        uve_core::deadline::disarm();
        match outcome {
            Ok(m) => m,
            Err(payload) => {
                let failure = JobFailure {
                    index,
                    kernel: job.bench.name().to_string(),
                    flavor: job.flavor,
                    vlen: job.flavor.vlen_bytes(),
                    stream_level: job.stream_level,
                    reason: panic_message(payload),
                };
                eprintln!("[job {index:>3}] FAILED: {}", failure.repro());
                self.failures
                    .lock()
                    .expect("failure log poisoned")
                    .push(failure);
                Measured {
                    name: format!("{} [FAILED]", job.bench.name()),
                    flavor: job.flavor,
                    committed: 0,
                    stats: uve_cpu::TimingStats::default(),
                }
            }
        }
    }

    /// The failures collected so far, in the order they were detected.
    pub fn failures(&self) -> Vec<JobFailure> {
        self.failures.lock().expect("failure log poisoned").clone()
    }

    /// Final harness verdict: prints one repro line per failed job to
    /// stderr and returns the process exit code (0 if every job
    /// succeeded, 1 otherwise). Figure binaries end with
    /// `std::process::exit(runner.finish())`.
    pub fn finish(&self) -> i32 {
        let failures = self.failures();
        if failures.is_empty() {
            return 0;
        }
        eprintln!("[runner] {} job(s) failed:", failures.len());
        for f in &failures {
            eprintln!("  {}", f.repro());
        }
        1
    }

    /// Runs `worker` closures: inline when serial, else on a scoped pool
    /// of `min(workers, work_items)` threads.
    fn pooled(&self, work_items: usize, worker: &(dyn Fn() + Sync)) {
        crate::pool::pooled(self.mode, work_items, worker);
    }
}

/// One worker per available core (1 if the count is unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parses an `--exec-mode` value (`interpret` or `translated`).
pub fn parse_exec_mode(s: &str) -> Option<ExecMode> {
    match s.to_ascii_lowercase().as_str() {
        "interpret" | "interpreter" => Some(ExecMode::Interpret),
        "translated" | "translate" => Some(ExecMode::Translated),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uve_kernels::saxpy::Saxpy;

    #[test]
    fn trace_is_send_sync_plain_data() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Trace>();
        assert_send_sync::<CachedTrace>();
        assert_send_sync::<Job<'_>>();
    }

    #[test]
    fn cache_emulates_once_per_key() {
        let runner = Runner::parallel(4);
        let bench = Saxpy::new(256);
        let jobs: Vec<Job> = (0..6)
            .map(|i| {
                let cpu = CpuConfig {
                    vec_prf: 48 + 16 * (i % 3),
                    ..CpuConfig::default()
                };
                Job::new(&bench, Flavor::Uve, cpu)
            })
            .collect();
        let out = runner.run(&jobs);
        assert_eq!(out.len(), 6);
        assert_eq!(runner.emulations(), 1, "one kernel point → one emulation");
        // Identical CPU configs must give identical cycle counts.
        assert_eq!(out[0].stats.cycles, out[3].stats.cycles);
    }

    #[test]
    fn distinct_program_parameters_get_distinct_keys() {
        use uve_kernels::gemm::GemmUnrolled;
        let a = GemmUnrolled::new(8, 32, 8, 1);
        let b = GemmUnrolled::new(8, 32, 8, 2);
        let ka = TraceKey::of(&a, Flavor::Uve, MemLevel::L2, IndirectPacking::Packed);
        let kb = TraceKey::of(&b, Flavor::Uve, MemLevel::L2, IndirectPacking::Packed);
        assert_eq!(ka.kernel, kb.kernel, "same display name");
        assert_ne!(ka, kb, "different programs must not share a trace");
    }

    /// A benchmark whose correctness check always fails, so
    /// [`emulate_trace`] panics — the vehicle for poisoned-job tests.
    struct PoisonedBench(Saxpy);

    impl Benchmark for PoisonedBench {
        fn name(&self) -> &'static str {
            "poisoned"
        }
        fn setup(&self, emu: &mut uve_core::Emulator) {
            self.0.setup(emu);
        }
        fn program(&self, flavor: Flavor) -> uve_isa::Program {
            self.0.program(flavor)
        }
        fn check(&self, _emu: &uve_core::Emulator) -> Result<(), String> {
            Err("deliberately poisoned job".to_string())
        }
    }

    #[test]
    fn poisoned_job_is_isolated_and_reported() {
        let good = Saxpy::new(256);
        let bad = PoisonedBench(Saxpy::new(256));
        let cpu = CpuConfig::default();
        let sweep = vec![
            Job::new(&good, Flavor::Uve, cpu.clone()),
            Job::new(&bad, Flavor::Uve, cpu.clone()),
            Job::new(&good, Flavor::Scalar, cpu.clone()),
        ];

        let clean = Runner::serial().verbose(false);
        let reference = clean.run(&[
            Job::new(&good, Flavor::Uve, cpu.clone()),
            Job::new(&good, Flavor::Scalar, cpu.clone()),
        ]);
        assert_eq!(clean.finish(), 0, "clean sweep exits zero");

        let runner = Runner::parallel(8).verbose(false);
        let out = runner.run(&sweep);
        assert_eq!(out.len(), 3, "every slot is filled");
        // The healthy jobs are bit-identical to the clean serial sweep.
        assert_eq!(out[0].stats, reference[0].stats);
        assert_eq!(out[2].stats, reference[1].stats);
        // The poisoned slot is a marked placeholder…
        assert_eq!(out[1].name, "poisoned [FAILED]");
        assert_eq!(out[1].committed, 0);
        // …with a repro line and a nonzero exit.
        let failures = runner.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].index, 1);
        let repro = failures[0].repro();
        assert!(repro.contains("kernel=poisoned"), "{repro}");
        assert!(repro.contains("deliberately poisoned job"), "{repro}");
        assert!(!failures[0].is_timeout());
        assert_eq!(runner.finish(), 1);
    }

    #[test]
    fn timed_out_job_is_classified_as_timeout() {
        let bench = Saxpy::new(4096);
        let runner = Runner::serial()
            .verbose(false)
            .timeout(Some(Duration::from_nanos(1)));
        let out = runner.run(&[Job::new(&bench, Flavor::Uve, CpuConfig::default())]);
        assert!(out[0].name.ends_with("[FAILED]"));
        let failures = runner.failures();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].is_timeout(), "{}", failures[0].reason);
        assert_eq!(runner.finish(), 1);
    }

    #[test]
    fn from_parallel_pool_matches_serial() {
        let bench = Saxpy::new(512);
        let cpu = CpuConfig::default();
        fn jobs<'a>(b: &'a Saxpy, cpu: &CpuConfig) -> Vec<Job<'a>> {
            vec![Job::new(b, Flavor::Uve, cpu.clone())]
        }
        let s = Runner::serial().run(&jobs(&bench, &cpu));
        let p = Runner::parallel(2).run(&jobs(&bench, &cpu));
        assert_eq!(s[0].committed, p[0].committed);
        assert_eq!(s[0].stats.cycles, p[0].stats.cycles);
    }
}
