//! Evaluation harness regenerating the tables and figures of the UVE paper.
//!
//! Each figure has a binary under `src/bin` (see `DESIGN.md` for the
//! experiment index):
//!
//! - `fig8` — code reduction, speed-up, rename blocks/cycle, bus
//!   utilization, and the GEMM unrolling study (panels A–E);
//! - `fig9` — sensitivity to the number of physical vector registers;
//! - `fig10` — sensitivity to the Streaming Engine FIFO depth;
//! - `fig11` — sensitivity to the streaming cache level;
//! - `modules` — sensitivity to the number of Stream Processing Modules
//!   (Sec. VI-B);
//! - `overheads` — the Streaming Engine storage inventory (Sec. VI-C).
//!
//! All binaries run the same flow: functional emulation of a kernel
//! ([`uve_kernels`]) producing a dynamic trace, then the cycle-level
//! out-of-order model ([`uve_cpu`]) with the Table I configuration.

#![warn(missing_docs)]

pub mod chrome;
pub mod cli;
pub mod figures;
pub mod pool;
pub mod report;
pub mod runner;

pub use chrome::{chrome_trace_json, tiny_saxpy_trace, trace_kernel};
pub use cli::Cli;
pub use pool::{panic_message, run_indexed, run_isolated};
pub use report::{ReportRow, StatsReport};
pub use runner::{
    default_jobs, emulate_trace_full, parse_exec_mode, replay, CachedTrace, Job, JobFailure,
    RunMode, Runner, TraceKey, SWEEP_FAULT_RATE,
};

use uve_cpu::{CpuConfig, TimingStats};
use uve_isa::MemLevel;
use uve_kernels::{Benchmark, Flavor};

/// One measured kernel execution.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Kernel name.
    pub name: String,
    /// Code flavour.
    pub flavor: Flavor,
    /// Committed dynamic instructions.
    pub committed: u64,
    /// Timing statistics from the out-of-order model.
    pub stats: TimingStats,
}

impl Measured {
    /// Cycles taken.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }
}

/// Emulates and times `bench` in `flavor` under `cpu` with streams
/// defaulting to `level` — the one-shot (uncached) path, built from the
/// same [`runner::emulate_trace`]/[`runner::replay`] primitives the
/// parallel [`Runner`] shards, so both paths report identical numbers.
///
/// # Panics
///
/// Panics if the kernel mis-executes or fails its correctness check —
/// measurement of an incorrect run would be meaningless.
pub fn measure_with(
    bench: &dyn Benchmark,
    flavor: Flavor,
    cpu: &CpuConfig,
    level: MemLevel,
) -> Measured {
    let cached = runner::emulate_trace(bench, flavor, level);
    runner::replay(bench.name(), flavor, &cached, cpu)
}

/// [`measure_with`] at the default L2 stream level.
pub fn measure(bench: &dyn Benchmark, flavor: Flavor, cpu: &CpuConfig) -> Measured {
    measure_with(bench, flavor, cpu, MemLevel::L2)
}

/// Geometric mean of a ratio series (the paper reports average factors).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Prints a row with a fixed-width first column.
pub fn row(name: &str, cells: &[String]) {
    print!("{name:<16}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

/// Prints a header row.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n=== {title} ===");
    row(
        "kernel",
        &cols.iter().map(|c| (*c).to_string()).collect::<Vec<_>>(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use uve_kernels::saxpy::Saxpy;

    #[test]
    fn measure_runs_and_checks() {
        let cpu = CpuConfig::default();
        let m = measure(&Saxpy::new(256), Flavor::Uve, &cpu);
        assert!(m.cycles() > 0);
        assert!(m.committed > 0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!(geomean(&[]).is_nan());
    }
}
