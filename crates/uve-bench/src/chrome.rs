//! Chrome trace-event JSON export of a traced run.
//!
//! [`chrome_trace_json`] renders an [`EventLog`] (from
//! [`OoOCore::run_traced`](uve_cpu::OoOCore::run_traced)) in the Chrome
//! trace-event format, loadable in `chrome://tracing` / Perfetto. One
//! trace holds three processes:
//!
//! - **pid 0 — core pipeline**: one "X" span per committed instruction
//!   (rename → commit), packed onto reorder-buffer lanes by a greedy
//!   free-lane assignment; `args` carry the issue/done cycles;
//! - **pid 1 — stream chunks**: one "X" span per stream chunk from
//!   FIFO-ready to commit (the load-to-use window), one lane group per
//!   stream register;
//! - **pid 2 — FIFO occupancy**: one "C" counter track per stream
//!   register, from the change-compressed occupancy timeline.
//!
//! Timestamps are cycles (the `ts` unit is nominally microseconds, so the
//! viewer's time axis reads directly in cycles). The JSON is hand-rolled —
//! integer fields only, emitted in log order — so regenerating a trace is
//! byte-identical (the golden-snapshot test `tests/golden_trace.rs`).

use std::fmt::Write;

use crate::runner::emulate_trace;
use uve_cpu::{CpuConfig, EventLog, OoOCore};
use uve_isa::MemLevel;
use uve_kernels::{saxpy::Saxpy, Benchmark, Flavor};

/// Escapes a string for a JSON value.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Greedy free-lane packing: assigns each `[start, end)` span (in input
/// order) the lowest lane whose previous span has ended, growing the lane
/// set as needed. Lanes never overlap when the input is sorted by `start`
/// (pipeline ops) or has non-decreasing `end` (commit-ordered chunks).
fn assign_lanes(spans: impl Iterator<Item = (u64, u64)>) -> Vec<usize> {
    let mut lane_free: Vec<u64> = Vec::new();
    spans
        .map(|(start, end)| {
            let lane = match lane_free.iter().position(|&free| free <= start) {
                Some(l) => l,
                None => {
                    lane_free.push(0);
                    lane_free.len() - 1
                }
            };
            lane_free[lane] = end;
            lane
        })
        .collect()
}

/// Renders `log` as a Chrome trace-event JSON document.
pub fn chrome_trace_json(name: &str, flavor: Flavor, log: &EventLog) -> String {
    let mut ev: Vec<String> = Vec::new();
    let meta = |pid: u32, what: &str| {
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(what)
        )
    };
    ev.push(meta(0, &format!("{name} / {flavor} — core pipeline")));
    ev.push(meta(1, "stream chunks (FIFO-ready → commit)"));
    ev.push(meta(2, "stream FIFO occupancy"));

    // Core pipeline: the packer processes spans in start order, so a lane
    // is only reused once its previous span has ended.
    let mut order: Vec<usize> = (0..log.ops.len()).collect();
    order.sort_by_key(|&i| (log.ops[i].rename, i));
    let lanes = assign_lanes(order.iter().map(|&i| {
        let op = &log.ops[i];
        (op.rename, op.commit.max(op.rename + 1))
    }));
    for (&i, &lane) in order.iter().zip(&lanes) {
        let op = &log.ops[i];
        let dur = op.commit.max(op.rename + 1) - op.rename;
        ev.push(format!(
            "{{\"name\":\"{:?} pc={:#x}\",\"ph\":\"X\",\"ts\":{},\"dur\":{dur},\
             \"pid\":0,\"tid\":{},\"args\":{{\"idx\":{},\"issue\":{},\"done\":{}}}}}",
            op.exec,
            op.pc,
            op.rename,
            10 + lane,
            op.idx,
            op.issue,
            op.done,
        ));
    }

    // Stream chunks: per stream register, chunks commit in order, so the
    // per-register greedy packing needs at most `fifo_depth` lanes.
    let mut per_u: [Vec<usize>; 32] = std::array::from_fn(|_| Vec::new());
    for (i, c) in log.chunks.iter().enumerate() {
        per_u[usize::from(c.u) & 31].push(i);
    }
    for (u, idxs) in per_u.iter().enumerate() {
        if idxs.is_empty() {
            continue;
        }
        let lanes = assign_lanes(idxs.iter().map(|&i| {
            let c = &log.chunks[i];
            (c.ready, c.commit.max(c.ready + 1))
        }));
        for (&i, &lane) in idxs.iter().zip(&lanes) {
            let c = &log.chunks[i];
            let dur = c.commit.max(c.ready + 1) - c.ready;
            ev.push(format!(
                "{{\"name\":\"u{u} {:?} chunk {}\",\"ph\":\"X\",\"ts\":{},\"dur\":{dur},\
                 \"pid\":1,\"tid\":{}}}",
                c.dir,
                c.chunk,
                c.ready,
                u * 16 + lane.min(15),
            ));
        }
    }

    // FIFO occupancy counters, one track per stream register.
    for p in &log.fifo {
        ev.push(format!(
            "{{\"name\":\"fifo-u{}\",\"ph\":\"C\",\"ts\":{},\"pid\":2,\"tid\":0,\
             \"args\":{{\"chunks\":{}}}}}",
            p.u, p.cycle, p.occupancy
        ));
    }

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&ev.join(",\n"));
    let _ = write!(
        out,
        "\n],\"otherData\":{{\"cycles\":{},\"ops\":{},\"chunks\":{}}}}}\n",
        log.cycles,
        log.ops.len(),
        log.chunks.len()
    );
    out
}

/// Traces one cold run of `bench`/`flavor` and renders it as Chrome
/// trace-event JSON.
///
/// # Panics
///
/// Panics if the kernel mis-executes (via [`emulate_trace`]).
pub fn trace_kernel(bench: &dyn Benchmark, flavor: Flavor) -> String {
    let cached = emulate_trace(bench, flavor, MemLevel::L2);
    let (_, log) = OoOCore::new(CpuConfig::default()).run_traced(&cached.trace);
    chrome_trace_json(bench.name(), flavor, &log)
}

/// The golden-snapshot subject: a 64-element SAXPY under UVE, small enough
/// to keep the committed JSON reviewable.
pub fn tiny_saxpy_trace() -> String {
    trace_kernel(&Saxpy::new(64), Flavor::Uve)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_never_overlap() {
        // Spans in commit order with out-of-order starts.
        let spans = [(0u64, 10u64), (2, 12), (5, 14), (10, 20), (12, 22)];
        let lanes = assign_lanes(spans.iter().copied());
        for (i, &(s1, e1)) in spans.iter().enumerate() {
            for (j, &(s2, e2)) in spans.iter().enumerate().skip(i + 1) {
                if lanes[i] == lanes[j] {
                    assert!(e1 <= s2 || e2 <= s1, "lane {} overlaps", lanes[i]);
                }
            }
        }
        assert_eq!(lanes[0], 0);
        assert_eq!(lanes[3], 0, "lane 0 reused once its span ended");
    }

    #[test]
    fn json_escapes_control_chars() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("x\ny"), "x\\u000ay");
    }

    #[test]
    fn tiny_trace_is_valid_shape() {
        let json = tiny_saxpy_trace();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"ph\":\"X\""), "has spans");
        assert!(json.contains("\"ph\":\"C\""), "has counters");
        assert!(json.contains("fifo-u0"), "SAXPY streams through u0");
        // Balanced braces/brackets — a cheap structural JSON check that
        // needs no parser dependency.
        let (mut braces, mut brackets, mut in_str, mut esc_next) = (0i64, 0i64, false, false);
        for c in json.chars() {
            if esc_next {
                esc_next = false;
                continue;
            }
            match c {
                '\\' if in_str => esc_next = true,
                '"' => in_str = !in_str,
                '{' if !in_str => braces += 1,
                '}' if !in_str => braces -= 1,
                '[' if !in_str => brackets += 1,
                ']' if !in_str => brackets -= 1,
                _ => {}
            }
            assert!(braces >= 0 && brackets >= 0);
        }
        assert_eq!(braces, 0);
        assert_eq!(brackets, 0);
        assert!(!in_str);
    }

    #[test]
    fn trace_regeneration_is_deterministic() {
        assert_eq!(tiny_saxpy_trace(), tiny_saxpy_trace());
    }
}
