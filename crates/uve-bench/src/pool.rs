//! A deterministic scoped worker pool, factored out of the evaluation
//! [`Runner`](crate::Runner) so other harnesses (the `uve-conform`
//! differential fuzzer) can share it.
//!
//! The contract is the one the runner's figure pipeline relies on: work is
//! identified by its submission index, workers pull indices from a shared
//! queue, and results are written back *by index* — so a parallel run
//! returns the same `Vec<T>`, in the same order with bit-identical
//! contents, as a serial one. Scheduling affects only wall-clock time.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::runner::RunMode;

/// Runs `f(i)` for every `i in 0..n` under `mode` and returns the results
/// in index order, independent of worker scheduling.
///
/// `RunMode::Serial` evaluates inline on the calling thread;
/// `RunMode::Parallel(w)` uses a scoped pool of `min(w, n)` threads.
pub fn run_indexed<T, F>(mode: RunMode, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match mode {
        RunMode::Serial => (0..n).map(f).collect(),
        RunMode::Parallel(_) => {
            let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
            let queue: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
            let worker = || {
                while let Some(i) = pop(&queue) {
                    *results[i].lock().expect("result slot poisoned") = Some(f(i));
                }
            };
            pooled(mode, n, &worker);
            results
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("result slot poisoned")
                        .expect("worker completed every item")
                })
                .collect()
        }
    }
}

/// Like [`run_indexed`], but each item runs under `catch_unwind`: a
/// panicking item yields `Err(message)` in its slot while every other item
/// still completes. This is the crash-isolation primitive the sweep harness
/// builds on — one poisoned job must not take down the whole figure.
pub fn run_isolated<T, F>(mode: RunMode, n: usize, f: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed(mode, n, |i| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).map_err(panic_message)
    })
}

/// Renders a caught panic payload as a human-readable message.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

/// Runs `worker` closures: inline when serial, else on a scoped pool of
/// `min(workers, work_items)` threads. Each worker is expected to drain a
/// shared queue (see [`pop`]).
pub fn pooled(mode: RunMode, work_items: usize, worker: &(dyn Fn() + Sync)) {
    match mode {
        RunMode::Serial => worker(),
        RunMode::Parallel(n) => {
            let threads = n.min(work_items.max(1));
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(worker);
                }
            });
        }
    }
}

/// Pops the next work index off a shared queue (the pool's dispatch
/// primitive).
pub fn pop(queue: &Mutex<VecDeque<usize>>) -> Option<usize> {
    queue.lock().expect("job queue poisoned").pop_front()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_results_match_serial_in_order() {
        let f = |i: usize| (i * i) as u64;
        let serial = run_indexed(RunMode::Serial, 100, f);
        let parallel = run_indexed(RunMode::Parallel(8), 100, f);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn panicking_item_is_isolated() {
        for mode in [RunMode::Serial, RunMode::Parallel(4)] {
            let out = run_isolated(mode, 8, |i| {
                assert!(i != 3, "boom on {i}");
                i * 10
            });
            for (i, slot) in out.iter().enumerate() {
                if i == 3 {
                    let msg = slot.as_ref().unwrap_err();
                    assert!(msg.contains("boom on 3"), "{msg}");
                } else {
                    assert_eq!(*slot, Ok(i * 10));
                }
            }
        }
    }

    #[test]
    fn zero_items_is_fine() {
        let out: Vec<u64> = run_indexed(RunMode::Parallel(4), 0, |_| unreachable!());
        assert!(out.is_empty());
    }
}
