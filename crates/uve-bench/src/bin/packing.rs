//! Indirect-packing ablation: every suite kernel's UVE run under packed
//! (default) and unpacked chunk semantics, against its scalar baseline.
//!
//! Packing groups gathered elements of indirectly modified streams into
//! full-width chunks instead of closing every chunk at the (typically
//! size-1) innermost dimension; affine kernels are bit-identical in both
//! modes, which this binary asserts. The interesting rows are the
//! indirect kernels — MAMR-Ind most of all, whose dependent
//! 3-instructions-per-element scalar chain is the documented source of
//! the pre-packing paper deviation (EXPERIMENTS.md).
//!
//! Usage: `packing [--jobs N | --serial] [--quiet] [--explain]`.

use uve_bench::{geomean, header, row, Cli, Job, Runner};
use uve_core::IndirectPacking;
use uve_cpu::CpuConfig;
use uve_kernels::{evaluation_suite, Flavor};

fn main() {
    let cli = Cli::parse();
    let runner = Runner::from_cli(&cli);
    let suite = evaluation_suite();
    let cpu = CpuConfig::default();

    // Per kernel: UVE packed, UVE unpacked, scalar baseline.
    let jobs: Vec<Job> = suite
        .iter()
        .flat_map(|bench| {
            [
                Job::new(bench.as_ref(), Flavor::Uve, cpu.clone()),
                Job {
                    packing: IndirectPacking::Unpacked,
                    ..Job::new(bench.as_ref(), Flavor::Uve, cpu.clone())
                },
                Job::new(bench.as_ref(), Flavor::Scalar, cpu.clone()),
            ]
        })
        .collect();
    let results = runner.run(&jobs);
    runner.maybe_explain(&results);

    header(
        "Indirect-packing ablation — UVE vs scalar",
        &[
            "packed cyc",
            "unpacked cyc",
            "packed x",
            "unpacked x",
            "inst ratio",
        ],
    );
    let mut packed_x = Vec::new();
    let mut unpacked_x = Vec::new();
    for (i, bench) in suite.iter().enumerate() {
        let (p, u, s) = (&results[3 * i], &results[3 * i + 1], &results[3 * i + 2]);
        let px = s.cycles() as f64 / p.cycles() as f64;
        let ux = s.cycles() as f64 / u.cycles() as f64;
        packed_x.push(px);
        unpacked_x.push(ux);
        let affine = p.cycles() == u.cycles() && p.committed == u.committed;
        // MAMR-Ind is the suite's only indirectly modified stream; every
        // other kernel must be bit-identical across packing modes.
        if bench.name() != "MAMR-Ind" {
            assert!(
                affine,
                "{}: affine kernel differs across packing modes \
                 (packed {} cyc / {} inst, unpacked {} cyc / {} inst)",
                bench.name(),
                p.cycles(),
                p.committed,
                u.cycles(),
                u.committed,
            );
        }
        row(
            bench.name(),
            &[
                format!("{}", p.cycles()),
                if affine {
                    "=".to_string()
                } else {
                    format!("{}", u.cycles())
                },
                format!("{px:.2}x"),
                format!("{ux:.2}x"),
                // Committed-instruction reduction from packing: < 1.0
                // means wider chunks retired fewer loop iterations.
                format!("{:.3}", p.committed as f64 / u.committed as f64),
            ],
        );
    }
    println!(
        "geomean speed-up vs scalar: packed {:.2}x, unpacked {:.2}x",
        geomean(&packed_x),
        geomean(&unpacked_x)
    );
    std::process::exit(runner.finish());
}
