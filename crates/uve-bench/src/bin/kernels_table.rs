//! The paper's Fig. 8 left table: per-kernel domain, stream count and
//! memory access pattern, plus the measured UVE instruction mix (the Fig. 1
//! argument: baseline loops are dominated by memory/indexing overhead that
//! streaming removes).
//!
//! Usage: `kernels_table [--jobs N | --serial] [--quiet]`. The table needs
//! functional traces only (no timing replay), so the runner's trace cache
//! is warmed in parallel and the rows are then formatted serially in
//! suite order.

use uve_bench::{row, Cli, Runner};
use uve_isa::{ExecClass, MemLevel};
use uve_kernels::{evaluation_suite, Benchmark, Flavor};

fn mix(trace: &uve_core::Trace) -> (f64, f64, f64) {
    let mut mem = 0u64;
    let mut compute = 0u64;
    let mut control = 0u64;
    let mut other = 0u64;
    for (class, n) in trace.class_histogram() {
        match class {
            ExecClass::Load | ExecClass::Store => mem += n,
            ExecClass::FpAdd
            | ExecClass::FpMul
            | ExecClass::FpMac
            | ExecClass::FpDiv
            | ExecClass::VecInt
            | ExecClass::IntMul
            | ExecClass::IntDiv => compute += n,
            ExecClass::Branch => control += n,
            _ => other += n,
        }
    }
    let total = (mem + compute + control + other) as f64;
    (
        mem as f64 / total,
        compute as f64 / total,
        control as f64 / total,
    )
}

fn main() {
    println!("=== Fig. 8 (left) — benchmark table + measured instruction mix ===");
    row(
        "kernel",
        &[
            "domain".into(),
            "streams".into(),
            "pattern".into(),
            "UVE mem%".into(),
            "UVE comp%".into(),
            "scalar mem%".into(),
        ],
    );
    let runner = Runner::from_cli(&Cli::parse());
    let suite = evaluation_suite();
    let points: Vec<(&dyn Benchmark, Flavor, MemLevel)> = suite
        .iter()
        .flat_map(|b| [Flavor::Uve, Flavor::Scalar].map(|f| (b.as_ref(), f, MemLevel::L2)))
        .collect();
    runner.warm_traces(&points);
    let code = runner.finish();
    if code != 0 {
        // A failed emulation leaves its cache slot poisoned; the rows
        // below would panic on it, so stop at the repro report instead.
        std::process::exit(code);
    }
    for bench in &suite {
        let uve = runner.trace(bench.as_ref(), Flavor::Uve, MemLevel::L2);
        let scalar = runner.trace(bench.as_ref(), Flavor::Scalar, MemLevel::L2);
        let (umem, ucomp, _) = mix(&uve.trace);
        let (smem, _, _) = mix(&scalar.trace);
        row(
            bench.name(),
            &[
                bench.domain().to_string(),
                bench.streams().to_string(),
                bench.pattern().to_string(),
                format!("{:.0}%", 100.0 * umem),
                format!("{:.0}%", 100.0 * ucomp),
                format!("{:.0}%", 100.0 * smem),
            ],
        );
    }
    println!(
        "\n(UVE loops carry almost no explicit memory instructions — the\n\
         streams moved them out of the pipeline, the paper's feature F2/F4.)"
    );
}
