//! Fig. 11 — streaming cache-level sensitivity.
//!
//! Usage: `fig11 [--jobs N | --serial] [--quiet]`.
fn main() {
    uve_bench::figures::fig11(&uve_bench::Runner::from_args());
}
