//! Fig. 11 — streaming cache-level sensitivity.
//!
//! Usage: `fig11 [--jobs N | --serial] [--quiet]`.
fn main() {
    let runner = uve_bench::Runner::from_cli(&uve_bench::Cli::parse());
    uve_bench::figures::fig11(&runner);
    std::process::exit(runner.finish());
}
