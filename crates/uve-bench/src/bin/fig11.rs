//! Fig. 11 — streaming cache-level sensitivity.
fn main() {
    uve_bench::figures::fig11();
}
