//! Multicore scaling figure: MOESI-coherent cores sharing the L2/DRAM.
//!
//! Two modes over the evaluation suite:
//!
//! - **sharded** (data-parallel): every core runs the same kernel with its
//!   written working set relocated to a private address-space slice except
//!   for a shared prefix of lines, so the snoop bus carries real
//!   cross-core invalidations, downgrades and owner forwards;
//! - **mp** (multi-programmed): more kernels than cores, round-robin
//!   preemptive time slicing with pipeline drain and stream-context
//!   restore penalties.
//!
//! ```text
//! smp [--mode sharded|mp|both] [--cores 1,2,4] [--kernels a,b,c]
//!     [--flavor uve|sve|neon|scalar] [--shared N] [--quantum N]
//!     [--check-every N] [--small] [--jobs N | --serial] [--quiet]
//!     [--explain]
//! ```
//!
//! Scheduling is deterministic: `--jobs 1` and `--jobs 8` print
//! bit-identical tables (the worker pool only reorders wall-clock time,
//! results are written back by point index).

use uve_bench::{header, row, Cli, Measured, Runner};
use uve_cpu::CpuConfig;
use uve_isa::MemLevel;
use uve_kernels::{Benchmark, Flavor};
use uve_smp::{relocate_trace, run_lockstep, run_multiprogrammed, shard_trace, MpConfig, SmpRun};

/// The 19-kernel evaluation suite, optionally at smoke-test sizes.
fn suite(small: bool) -> Vec<Box<dyn Benchmark>> {
    use uve_kernels::*;
    if !small {
        return evaluation_suite();
    }
    vec![
        Box::new(memcpy::Memcpy::new(4096)),
        Box::new(stream::Stream::new(3072)),
        Box::new(saxpy::Saxpy::new(4096)),
        Box::new(gemm::Gemm::new(16, 16, 16)),
        Box::new(threemm::ThreeMm::new(16)),
        Box::new(mvt::Mvt::new(48)),
        Box::new(gemver::Gemver::new(48)),
        Box::new(trisolv::Trisolv::new(48)),
        Box::new(jacobi::Jacobi1d::new(1024, 2)),
        Box::new(jacobi::Jacobi2d::new(24, 2)),
        Box::new(irsmk::Irsmk::new(1024)),
        Box::new(haccmk::Haccmk::new(32)),
        Box::new(knn::Knn::new(128, 8)),
        Box::new(covariance::Covariance::new(16, 16)),
        Box::new(mamr::Mamr::full(48)),
        Box::new(mamr::Mamr::diag(48)),
        Box::new(mamr::Mamr::indirect(48)),
        Box::new(seidel::Seidel2d::new(20, 2)),
        Box::new(floyd::FloydWarshall::new(16)),
    ]
}

fn parse_flavor(s: &str) -> Flavor {
    match s.to_lowercase().as_str() {
        "uve" => Flavor::Uve,
        "sve" => Flavor::Sve,
        "neon" => Flavor::Neon,
        "scalar" => Flavor::Scalar,
        other => {
            eprintln!("unknown flavor {other:?}: expected uve, sve, neon, or scalar");
            std::process::exit(2);
        }
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let cli = Cli::parse();
    let runner = Runner::from_cli(&cli);
    let mode = cli.value("--mode").unwrap_or("both").to_string();
    if !matches!(mode.as_str(), "sharded" | "mp" | "both") {
        eprintln!("unknown --mode {mode:?}: expected sharded, mp, or both");
        std::process::exit(2);
    }
    let cores: Vec<usize> = {
        let list = cli.list("--cores");
        if list.is_empty() {
            vec![1, 2, 4]
        } else {
            list.iter()
                .map(|c| {
                    c.parse().unwrap_or_else(|_| {
                        eprintln!("bad --cores entry {c:?}");
                        std::process::exit(2);
                    })
                })
                .collect()
        }
    };
    // The sharded mode defaults to scalar code: explicit loads/stores run
    // through the private L1s, which is where MOESI sharing lives. Stream
    // (UVE) traffic exercises the snoop bus through the L2 owner-probe
    // path instead.
    let flavor = parse_flavor(cli.value("--flavor").unwrap_or("scalar"));
    let shared = cli.parsed::<usize>("--shared").unwrap_or(16);
    let quantum = cli.parsed::<u64>("--quantum").unwrap_or(5_000);
    let check_every = cli.parsed::<u64>("--check-every").unwrap_or(0);
    let filter = cli.list("--kernels");

    let suite = suite(cli.has("--small"));
    let selected: Vec<&dyn Benchmark> = suite
        .iter()
        .map(AsRef::as_ref)
        .filter(|b| filter.is_empty() || filter.iter().any(|f| b.name().eq_ignore_ascii_case(f)))
        .collect();
    if selected.is_empty() {
        eprintln!("no kernels selected; suite:");
        for b in &suite {
            eprintln!("  {}", b.name());
        }
        std::process::exit(2);
    }

    let cpu = CpuConfig::default();
    let level = MemLevel::L2;
    let points: Vec<(&dyn Benchmark, Flavor, MemLevel)> =
        selected.iter().map(|b| (*b, flavor, level)).collect();
    runner.warm_traces(&points);
    let code = runner.finish();
    if code != 0 {
        std::process::exit(code);
    }

    if mode == "sharded" || mode == "both" {
        let cols: Vec<String> = cores
            .iter()
            .flat_map(|c| [format!("cycles@{c}"), format!("snoops@{c}")])
            .chain(["scaling".to_string()])
            .collect();
        header(
            &format!("Multicore scaling — sharded {flavor} kernels (shared prefix {shared} lines)"),
            &cols.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        // One sweep point per kernel; all core counts inside the point so
        // a row is self-contained.
        let runs: Vec<Vec<SmpRun>> = uve_bench::run_indexed(runner.mode(), selected.len(), |i| {
            let trace = runner.trace(selected[i], flavor, level);
            cores
                .iter()
                .map(|&n| {
                    let traces: Vec<_> = (0..n)
                        .map(|c| shard_trace(&trace.trace, c, shared))
                        .collect();
                    run_lockstep(&cpu, &traces, check_every)
                        .expect("single-writer MOESI invariant violated")
                })
                .collect()
        });
        let mut explained: Vec<Measured> = Vec::new();
        for (bench, per_cores) in selected.iter().zip(&runs) {
            let mut cells = Vec::new();
            for (n, r) in cores.iter().zip(per_cores) {
                let snoops: u64 = r.snoop.iter().map(|s| s.cross_core_events()).sum();
                cells.push(r.makespan.to_string());
                cells.push(snoops.to_string());
                for (core, s) in r.per_core.iter().enumerate() {
                    s.account
                        .check(s.cycles)
                        .expect("per-core cycle accounting must conserve");
                    explained.push(Measured {
                        name: format!("{}@{n}c/core{core}", bench.name()),
                        flavor,
                        committed: s.committed,
                        stats: s.clone(),
                    });
                }
            }
            let first = per_cores.first().map_or(0, |r| r.makespan);
            let last = per_cores.last().map_or(0, |r| r.makespan);
            // Weak scaling: every core runs the whole kernel on its own
            // slice, so 1.00x means the extra cores added no interference.
            cells.push(if last == 0 {
                "-".to_string()
            } else {
                format!("{:.2}x", first as f64 / last as f64)
            });
            row(bench.name(), &cells);
        }
        runner.maybe_explain(&explained);
        println!(
            "\n(Weak scaling: every core runs the whole kernel on a private\n\
             slice plus the shared write prefix, so 1.00x is perfect.\n\
             snoops@N sums cross-core invalidations, downgrades and owner\n\
             forwards — the shared prefix keeps the snoop bus live.)"
        );
    }

    if mode == "mp" || mode == "both" {
        println!(
            "\n=== Multiprogramming — {} mixed kernels, quantum {quantum} ===",
            selected.len()
        );
        row(
            "cores",
            &["ticks", "preempt(min)", "preempt(total)", "snoop-bus"].map(str::to_string),
        );
        let mp_runs = uve_bench::run_indexed(runner.mode(), cores.len(), |i| {
            // Each program gets its own address-space slot, as unrelated
            // processes would; only migration and capacity effects remain.
            let traces: Vec<_> = selected
                .iter()
                .enumerate()
                .map(|(slot, b)| relocate_trace(&runner.trace(*b, flavor, level).trace, slot))
                .collect();
            let refs: Vec<&uve_core::Trace> = traces.iter().collect();
            let cfg = MpConfig {
                cores: cores[i],
                quantum,
                restore_penalty: 200,
                check_every,
            };
            run_multiprogrammed(&cpu, &refs, &cfg).expect("single-writer MOESI invariant violated")
        });
        for (n, r) in cores.iter().zip(&mp_runs) {
            for p in &r.programs {
                p.stats
                    .account
                    .check(p.stats.cycles)
                    .expect("per-program cycle accounting must conserve");
            }
            let min = r.programs.iter().map(|p| p.preemptions).min().unwrap_or(0);
            let total: u64 = r.programs.iter().map(|p| p.preemptions).sum();
            row(
                &n.to_string(),
                &[
                    r.scheduler_ticks.to_string(),
                    min.to_string(),
                    total.to_string(),
                    r.bus_transactions.to_string(),
                ],
            );
        }
        println!(
            "\n(Each program keeps one pipeline across slices: quantum expiry\n\
             freezes fetch, the window drains, and the next slice is charged\n\
             a stream-context restore penalty it spends occupying the\n\
             core. More cores shorten the makespan until the mix fits.)"
        );
    }
}
