//! Chrome trace-event export of one kernel run.
//!
//! ```text
//! cargo run --release --bin trace -- <kernel> [flavor] [--out FILE]
//! cargo run --release --bin trace -- --tiny-saxpy [--out FILE]
//! ```
//!
//! `<kernel>` matches an evaluation-suite kernel name case-insensitively
//! (e.g. `saxpy`, `mamr-ind`); `[flavor]` is `uve` (default), `sve`,
//! `neon`, or `scalar`. The JSON goes to `--out FILE` or stdout, and loads
//! in `chrome://tracing` or <https://ui.perfetto.dev>. `--tiny-saxpy` is
//! the golden-snapshot subject of `tests/golden_trace.rs`.

use uve_bench::{tiny_saxpy_trace, trace_kernel, Cli};
use uve_kernels::{evaluation_suite, Flavor};

fn main() {
    let cli = Cli::parse();
    let out_path = cli.value("--out").map(str::to_string);
    let free = cli.free(&["--out"]);

    let json = if cli.has("--tiny-saxpy") {
        tiny_saxpy_trace()
    } else {
        let Some(kernel) = free.first() else {
            eprintln!(
                "usage: trace <kernel> [uve|sve|neon|scalar] [--out FILE] | trace --tiny-saxpy"
            );
            eprintln!("kernels:");
            for b in evaluation_suite() {
                eprintln!("  {}", b.name());
            }
            std::process::exit(2);
        };
        let flavor = match free.get(1).map(|s| s.to_lowercase()) {
            None => Flavor::Uve,
            Some(f) => match f.as_str() {
                "uve" => Flavor::Uve,
                "sve" => Flavor::Sve,
                "neon" => Flavor::Neon,
                "scalar" => Flavor::Scalar,
                other => {
                    eprintln!("unknown flavor {other:?}: expected uve, sve, neon, or scalar");
                    std::process::exit(2);
                }
            },
        };
        let suite = evaluation_suite();
        let Some(bench) = suite.iter().find(|b| b.name().eq_ignore_ascii_case(kernel)) else {
            eprintln!("unknown kernel {kernel:?}; kernels:");
            for b in &suite {
                eprintln!("  {}", b.name());
            }
            std::process::exit(2);
        };
        eprintln!("[trace] {} / {flavor}: tracing one cold run…", bench.name());
        trace_kernel(bench.as_ref(), flavor)
    };

    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("error: writing trace to {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("[trace] wrote {} bytes to {path}", json.len());
        }
        None => print!("{json}"),
    }
}
