//! Emulated-instruction throughput: decode-dispatch interpreter vs the
//! basic-block translation cache (`ExecMode::Translated`).
//!
//! Runs the full 19-kernel evaluation suite across all four code flavors,
//! untraced (`record_trace: false` — the configuration conformance sweeps
//! and SMP scheduling spend their wall-clock in), under both execution
//! modes. Asserts per point that committed instructions, `arch_digest` and
//! memory `content_hash` are bit-identical across modes, re-runs the
//! translated pass under a parallel worker pool and asserts it
//! bit-identical to the serial pass, and gates the speedup on the
//! dispatch-bound scalar flavor (translated ≥ `--min-speedup`× interpreter
//! Minst/s, default 5). The translation cache removes per-instruction
//! dispatch overhead; UVE points spend their wall-clock in the stream unit
//! and SVE/NEON points in per-lane semantic work — both shared verbatim
//! with the interpreter — so those flavors' speedups are reported as
//! reference only.
//!
//! `--json FILE` writes the `BENCH_emu.json` artifact. Its `suite` section
//! (point count, total committed instructions, a digest over every point's
//! final state) is deterministic across machines; the wall-clock Minst/s
//! numbers are reference-only. The file is rewritten only when the
//! deterministic section changes, so a checked-in artifact stays
//! `git diff`-clean on any machine while still drift-gating functional
//! changes.
//!
//! Usage: `emu [--jobs N | --serial] [--quiet] [--reps N]
//! [--min-speedup X] [--json FILE]`.

use std::time::Instant;
use uve_bench::{default_jobs, header, row, run_indexed, Cli, RunMode};
use uve_core::{EmuConfig, Emulator, ExecMode};
use uve_kernels::{evaluation_suite, Benchmark, Flavor};
use uve_mem::Memory;

/// Final state of one functional run, compared across modes and pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outcome {
    committed: u64,
    arch_digest: u64,
    mem_hash: u64,
}

/// Runs one (kernel, flavor) point untraced under `exec`, returning the
/// outcome and the emulation wall-clock in seconds.
fn run_point(bench: &dyn Benchmark, flavor: Flavor, exec: ExecMode) -> (Outcome, f64) {
    let cfg = EmuConfig {
        vlen_bytes: flavor.vlen_bytes(),
        record_trace: false,
        exec,
        ..EmuConfig::default()
    };
    let mut emu = Emulator::new(cfg, Memory::new());
    bench.setup(&mut emu);
    let program = bench.program(flavor);
    let t0 = Instant::now();
    let result = emu
        .run(&program)
        .unwrap_or_else(|e| panic!("{}/{flavor}/{exec:?}: {e}", bench.name()));
    let dt = t0.elapsed().as_secs_f64();
    bench
        .check(&emu)
        .unwrap_or_else(|e| panic!("{}/{flavor}/{exec:?}: {e}", bench.name()));
    (
        Outcome {
            committed: result.committed,
            arch_digest: emu.arch_digest(),
            mem_hash: emu.mem.content_hash(),
        },
        dt,
    )
}

/// FNV-1a over every point's name, flavor and outcome — the deterministic
/// fingerprint of the whole suite's functional behaviour.
fn suite_digest(points: &[(String, Flavor)], outcomes: &[Outcome]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut put = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    for ((name, flavor), o) in points.iter().zip(outcomes) {
        put(name.as_bytes());
        put(format!("{flavor}").as_bytes());
        put(&o.committed.to_le_bytes());
        put(&o.arch_digest.to_le_bytes());
        put(&o.mem_hash.to_le_bytes());
    }
    h
}

#[allow(clippy::too_many_lines)]
fn main() {
    let cli = Cli::parse();
    let quiet = cli.has("--quiet");
    let reps: usize = cli.parsed("--reps").unwrap_or(3).max(1);
    let min_speedup: f64 = cli.parsed("--min-speedup").unwrap_or(5.0);
    let jobs = if cli.has("--serial") {
        1
    } else {
        cli.parsed("--jobs").unwrap_or_else(default_jobs)
    };

    let suite = evaluation_suite();
    let points: Vec<(usize, Flavor)> = suite
        .iter()
        .enumerate()
        .flat_map(|(i, _)| Flavor::all().into_iter().map(move |f| (i, f)))
        .collect();
    let labels: Vec<(String, Flavor)> = points
        .iter()
        .map(|&(i, f)| (suite[i].name().to_string(), f))
        .collect();

    // Serial timed passes: per point, best-of-`reps` emulation time in each
    // mode, with per-point bit-identity asserted between modes.
    let mut interp = Vec::with_capacity(points.len());
    let mut trans = Vec::with_capacity(points.len());
    let mut t_interp = Vec::with_capacity(points.len());
    let mut t_trans = Vec::with_capacity(points.len());
    for &(i, flavor) in &points {
        let bench = suite[i].as_ref();
        let (mut oi, mut ti) = run_point(bench, flavor, ExecMode::Interpret);
        let (mut ot, mut tt) = run_point(bench, flavor, ExecMode::Translated);
        for _ in 1..reps {
            let (o2, t2) = run_point(bench, flavor, ExecMode::Interpret);
            assert_eq!(
                oi,
                o2,
                "{}/{flavor}: interpreter not deterministic",
                bench.name()
            );
            ti = ti.min(t2);
            oi = o2;
            let (o3, t3) = run_point(bench, flavor, ExecMode::Translated);
            assert_eq!(
                ot,
                o3,
                "{}/{flavor}: translated not deterministic",
                bench.name()
            );
            tt = tt.min(t3);
            ot = o3;
        }
        assert_eq!(
            oi,
            ot,
            "{}/{flavor}: translated mode diverged from the interpreter",
            bench.name()
        );
        interp.push(oi);
        trans.push(ot);
        t_interp.push(ti);
        t_trans.push(tt);
    }

    // Parallel translated pass: submission-ordered results must be
    // bit-identical to the serial pass regardless of worker count.
    let mode = if jobs > 1 {
        RunMode::Parallel(jobs)
    } else {
        RunMode::Serial
    };
    let parallel: Vec<Outcome> = run_indexed(mode, points.len(), |k| {
        let (i, flavor) = points[k];
        run_point(suite[i].as_ref(), flavor, ExecMode::Translated).0
    });
    assert_eq!(
        trans, parallel,
        "translated outcomes differ between serial and --jobs {jobs}"
    );

    let total_committed: u64 = interp.iter().map(|o| o.committed).sum();
    let sum_i: f64 = t_interp.iter().sum();
    let sum_t: f64 = t_trans.iter().sum();
    let minst_i = total_committed as f64 / sum_i / 1e6;
    let minst_t = total_committed as f64 / sum_t / 1e6;
    let speedup = minst_t / minst_i;

    // Per-flavor aggregates. The translation cache targets per-instruction
    // *dispatch* overhead, so the gated figure is the scalar flavor — the
    // dispatch-bound one. UVE points spend their time in the stream unit
    // (shared verbatim with the interpreter) and SVE/NEON points in
    // per-lane semantic work, so their speedups are reported as reference
    // only.
    struct FlavorAgg {
        flavor: Flavor,
        minst_i: f64,
        minst_t: f64,
        speedup: f64,
    }
    let per_flavor: Vec<FlavorAgg> = Flavor::all()
        .into_iter()
        .map(|fl| {
            let idx: Vec<usize> = (0..points.len()).filter(|&k| points[k].1 == fl).collect();
            let c: u64 = idx.iter().map(|&k| interp[k].committed).sum();
            let ti: f64 = idx.iter().map(|&k| t_interp[k]).sum();
            let tt: f64 = idx.iter().map(|&k| t_trans[k]).sum();
            let mi = c as f64 / ti / 1e6;
            let mt = c as f64 / tt / 1e6;
            FlavorAgg {
                flavor: fl,
                minst_i: mi,
                minst_t: mt,
                speedup: mt / mi,
            }
        })
        .collect();
    let scalar = per_flavor
        .iter()
        .find(|a| a.flavor == Flavor::Scalar)
        .expect("scalar flavor in suite");

    if !quiet {
        header(
            "Emulated-instruction throughput — interpreter vs translated",
            &["flavor", "Minst", "interp s", "trans s", "speedup"],
        );
        for (k, (name, flavor)) in labels.iter().enumerate() {
            row(
                name,
                &[
                    format!("{flavor}"),
                    format!("{:.2}", interp[k].committed as f64 / 1e6),
                    format!("{:.4}", t_interp[k]),
                    format!("{:.4}", t_trans[k]),
                    format!("{:.2}x", t_interp[k] / t_trans[k]),
                ],
            );
        }
    }
    for a in &per_flavor {
        println!(
            "{:>8}: interpreter {:.1} Minst/s, translated {:.1} Minst/s, speedup {:.2}x{}",
            format!("{}", a.flavor),
            a.minst_i,
            a.minst_t,
            a.speedup,
            if a.flavor == Flavor::Scalar {
                "  <- gated (dispatch-bound)"
            } else {
                ""
            },
        );
    }
    println!(
        "suite: {} points, {:.1} Minst; all-flavor interpreter {minst_i:.1} Minst/s, \
         translated {minst_t:.1} Minst/s, speedup {speedup:.2}x \
         (serial == --jobs {jobs}: yes)",
        points.len(),
        total_committed as f64 / 1e6,
    );

    if let Some(path) = cli.value("--json") {
        let digest = suite_digest(&labels, &interp);
        // Deterministic across machines: only functional facts.
        let suite_block = format!(
            "  \"suite\": {{\n    \"kernels\": {},\n    \"points\": {},\n    \
             \"total_committed\": {},\n    \"state_digest\": \"0x{:016x}\"\n  }}",
            suite.len(),
            points.len(),
            total_committed,
            digest,
        );
        let flavor_rows: Vec<String> = per_flavor
            .iter()
            .map(|a| {
                format!(
                    "      {{\"flavor\": \"{}\", \"interpreter_minst_per_s\": {:.1}, \
                     \"translated_minst_per_s\": {:.1}, \"speedup\": {:.2}}}",
                    a.flavor, a.minst_i, a.minst_t, a.speedup
                )
            })
            .collect();
        let json = format!(
            "{{\n{suite_block},\n  \"reference_throughput\": {{\n    \
             \"interpreter_minst_per_s\": {minst_i:.1},\n    \
             \"translated_minst_per_s\": {minst_t:.1},\n    \
             \"speedup\": {speedup:.2},\n    \
             \"per_flavor\": [\n{}\n    ],\n    \
             \"gate_flavor\": \"{}\",\n    \
             \"gated_speedup\": {:.2},\n    \
             \"min_speedup_gate\": {min_speedup:.1},\n    \
             \"serial_jobs_bit_identical\": true\n  }}\n}}\n",
            flavor_rows.join(",\n"),
            Flavor::Scalar,
            scalar.speedup,
        );
        let unchanged = std::fs::read_to_string(path)
            .map(|old| old.contains(&suite_block))
            .unwrap_or(false);
        if unchanged {
            if !quiet {
                println!("{path}: deterministic suite section unchanged, not rewritten");
            }
        } else {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            if !quiet {
                println!("{path}: rewritten (deterministic suite section changed)");
            }
        }
    }

    assert!(
        scalar.speedup >= min_speedup,
        "translated-mode speedup on the dispatch-bound scalar flavor is \
         {:.2}x, below the {min_speedup:.1}x gate ({:.1} -> {:.1} Minst/s)",
        scalar.speedup,
        scalar.minst_i,
        scalar.minst_t,
    );
}
