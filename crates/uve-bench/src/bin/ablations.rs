//! Ablations of the design choices DESIGN.md calls out: what each
//! mechanism contributes to the headline result, measured on one
//! memory-bound (SAXPY) and one L2-bound (GEMM) kernel.
//!
//! - full-line stream stores (vs write-allocate),
//! - L1/L2 prefetchers on the baseline,
//! - MSHR counts (memory-level parallelism limits),
//! - DRAM latency,
//! - branch-predictor-modeled redirect penalties.

use uve_bench::{header, measure, row};
use uve_cpu::CpuConfig;
use uve_kernels::{gemm::Gemm, saxpy::Saxpy, Benchmark, Flavor};
use uve_mem::MemConfig;

fn pair() -> Vec<(Box<dyn Benchmark>, &'static str)> {
    vec![
        (Box::new(Saxpy::new(65536)), "SAXPY (DRAM-bound)"),
        (Box::new(Gemm::new(32, 32, 32)), "GEMM (L2-bound)"),
    ]
}

fn speedup(bench: &dyn Benchmark, cpu: &CpuConfig) -> f64 {
    let uve = measure(bench, Flavor::Uve, cpu);
    let sve = measure(bench, Flavor::Sve, cpu);
    sve.cycles() as f64 / uve.cycles() as f64
}

fn main() {
    header(
        "Ablations — UVE-vs-SVE speed-up under model variations",
        &["SAXPY", "GEMM"],
    );

    let configs: Vec<(&str, CpuConfig)> = vec![
        ("default", CpuConfig::default()),
        (
            "no baseline prefetchers",
            CpuConfig {
                mem: MemConfig {
                    l1_prefetcher: false,
                    l2_prefetcher: false,
                    ..MemConfig::default()
                },
                ..CpuConfig::default()
            },
        ),
        (
            "L1 MSHRs 8 -> 32",
            CpuConfig {
                mem: MemConfig {
                    l1_mshrs: 32,
                    ..MemConfig::default()
                },
                ..CpuConfig::default()
            },
        ),
        (
            "L2 MSHRs 32 -> 8",
            CpuConfig {
                mem: MemConfig {
                    l2_mshrs: 8,
                    ..MemConfig::default()
                },
                ..CpuConfig::default()
            },
        ),
        (
            "DRAM latency 70 -> 140",
            CpuConfig {
                mem: MemConfig {
                    dram: uve_mem::DramConfig {
                        latency: 140,
                        ..uve_mem::DramConfig::default()
                    },
                    ..MemConfig::default()
                },
                ..CpuConfig::default()
            },
        ),
        (
            "mispredict penalty 11 -> 0",
            CpuConfig {
                mispredict_penalty: 0,
                ..CpuConfig::default()
            },
        ),
        (
            "single DRAM channel",
            CpuConfig {
                mem: MemConfig {
                    dram: uve_mem::DramConfig {
                        channels: 1,
                        ..uve_mem::DramConfig::default()
                    },
                    ..MemConfig::default()
                },
                ..CpuConfig::default()
            },
        ),
    ];

    for (label, cpu) in configs {
        let cells: Vec<String> = pair()
            .iter()
            .map(|(b, _)| format!("{:.2}x", speedup(b.as_ref(), &cpu)))
            .collect();
        row(label, &cells);
    }

    println!(
        "\n(Speed-ups are UVE vs SVE under each variation; the 'default' row\n\
         matches Fig. 8.B. Memory-system knobs move the DRAM-bound kernel\n\
         only; the L2-bound kernel responds to front-end knobs instead.)"
    );
}
