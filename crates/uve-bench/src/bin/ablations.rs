//! Ablations of the design choices DESIGN.md calls out: what each
//! mechanism contributes to the headline result, measured on one
//! memory-bound (SAXPY) and one L2-bound (GEMM) kernel.
//!
//! - full-line stream stores (vs write-allocate),
//! - L1/L2 prefetchers on the baseline,
//! - MSHR counts (memory-level parallelism limits),
//! - DRAM latency,
//! - branch-predictor-modeled redirect penalties.
//!
//! Usage: `ablations [--jobs N | --serial] [--quiet]`. All
//! `(config, kernel, flavor)` points are sharded through the parallel
//! runner; the four functional traces are emulated once and replayed
//! under every configuration.

use uve_bench::{header, row, Cli, Job, Runner};
use uve_cpu::CpuConfig;
use uve_kernels::{gemm::Gemm, saxpy::Saxpy, Benchmark, Flavor};
use uve_mem::MemConfig;

fn pair() -> Vec<(Box<dyn Benchmark>, &'static str)> {
    vec![
        (Box::new(Saxpy::new(65536)), "SAXPY (DRAM-bound)"),
        (Box::new(Gemm::new(32, 32, 32)), "GEMM (L2-bound)"),
    ]
}

fn main() {
    header(
        "Ablations — UVE-vs-SVE speed-up under model variations",
        &["SAXPY", "GEMM"],
    );

    let configs: Vec<(&str, CpuConfig)> = vec![
        ("default", CpuConfig::default()),
        (
            "no baseline prefetchers",
            CpuConfig {
                mem: MemConfig {
                    l1_prefetcher: false,
                    l2_prefetcher: false,
                    ..MemConfig::default()
                },
                ..CpuConfig::default()
            },
        ),
        (
            "L1 MSHRs 8 -> 32",
            CpuConfig {
                mem: MemConfig {
                    l1_mshrs: 32,
                    ..MemConfig::default()
                },
                ..CpuConfig::default()
            },
        ),
        (
            "L2 MSHRs 32 -> 8",
            CpuConfig {
                mem: MemConfig {
                    l2_mshrs: 8,
                    ..MemConfig::default()
                },
                ..CpuConfig::default()
            },
        ),
        (
            "DRAM latency 70 -> 140",
            CpuConfig {
                mem: MemConfig {
                    dram: uve_mem::DramConfig {
                        latency: 140,
                        ..uve_mem::DramConfig::default()
                    },
                    ..MemConfig::default()
                },
                ..CpuConfig::default()
            },
        ),
        (
            "mispredict penalty 11 -> 0",
            CpuConfig {
                mispredict_penalty: 0,
                ..CpuConfig::default()
            },
        ),
        (
            "single DRAM channel",
            CpuConfig {
                mem: MemConfig {
                    dram: uve_mem::DramConfig {
                        channels: 1,
                        ..uve_mem::DramConfig::default()
                    },
                    ..MemConfig::default()
                },
                ..CpuConfig::default()
            },
        ),
    ];

    let runner = Runner::from_cli(&Cli::parse());
    let benches = pair();
    // Per config, per kernel: one UVE and one SVE replay of cached traces.
    let jobs: Vec<Job> = configs
        .iter()
        .flat_map(|(_, cpu)| {
            benches.iter().flat_map(|(b, _)| {
                [Flavor::Uve, Flavor::Sve].map(|f| Job::new(b.as_ref(), f, cpu.clone()))
            })
        })
        .collect();
    let results = runner.run(&jobs);
    assert!(
        runner.emulations() <= (benches.len() * 2) as u64,
        "ablations must replay cached traces across configurations"
    );

    for ((label, _), sweep) in configs.iter().zip(results.chunks_exact(benches.len() * 2)) {
        let cells: Vec<String> = sweep
            .chunks_exact(2)
            .map(|uve_sve| {
                format!(
                    "{:.2}x",
                    uve_sve[1].cycles() as f64 / uve_sve[0].cycles() as f64
                )
            })
            .collect();
        row(label, &cells);
    }

    println!(
        "\n(Speed-ups are UVE vs SVE under each variation; the 'default' row\n\
         matches Fig. 8.B. Memory-system knobs move the DRAM-bound kernel\n\
         only; the L2-bound kernel responds to front-end knobs instead.)"
    );
    std::process::exit(runner.finish());
}
