//! Fig. 9 — physical-vector-register sensitivity.
//!
//! Usage: `fig9 [--jobs N | --serial] [--quiet]`.
fn main() {
    let runner = uve_bench::Runner::from_cli(&uve_bench::Cli::parse());
    uve_bench::figures::fig9(&runner);
    std::process::exit(runner.finish());
}
