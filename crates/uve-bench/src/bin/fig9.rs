//! Fig. 9 — physical-vector-register sensitivity.
fn main() {
    uve_bench::figures::fig9();
}
