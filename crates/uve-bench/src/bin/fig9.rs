//! Fig. 9 — physical-vector-register sensitivity.
//!
//! Usage: `fig9 [--jobs N | --serial] [--quiet]`.
fn main() {
    uve_bench::figures::fig9(&uve_bench::Runner::from_args());
}
