//! Fig. 10 — Streaming Engine FIFO-depth sensitivity.
//!
//! Usage: `fig10 [--jobs N | --serial] [--quiet]`.
fn main() {
    let runner = uve_bench::Runner::from_cli(&uve_bench::Cli::parse());
    uve_bench::figures::fig10(&runner);
    std::process::exit(runner.finish());
}
