//! Fig. 10 — Streaming Engine FIFO-depth sensitivity.
//!
//! Usage: `fig10 [--jobs N | --serial] [--quiet]`.
fn main() {
    uve_bench::figures::fig10(&uve_bench::Runner::from_args());
}
