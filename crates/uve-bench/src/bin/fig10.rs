//! Fig. 10 — Streaming Engine FIFO-depth sensitivity.
fn main() {
    uve_bench::figures::fig10();
}
