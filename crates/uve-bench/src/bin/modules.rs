//! Sec. VI-B — Stream Processing Module count sensitivity.
//!
//! Usage: `modules [--jobs N | --serial] [--quiet]`.
fn main() {
    uve_bench::figures::modules(&uve_bench::Runner::from_args());
}
