//! Sec. VI-B — Stream Processing Module count sensitivity.
//!
//! Usage: `modules [--jobs N | --serial] [--quiet]`.
fn main() {
    let runner = uve_bench::Runner::from_cli(&uve_bench::Cli::parse());
    uve_bench::figures::modules(&runner);
    std::process::exit(runner.finish());
}
