//! Sec. VI-B — Stream Processing Module count sensitivity.
fn main() {
    uve_bench::figures::modules();
}
