//! Fig. 8 — the main evaluation (panels A–E).
//!
//! Usage: `fig8 [--panel a|b|c|d|e] [--jobs N | --serial] [--quiet]`
//! (default: all panels, one worker per core).

use uve_bench::{Cli, Runner};

fn main() {
    let cli = Cli::parse();
    let panel = cli.value("--panel").map(str::to_string);
    let runner = Runner::from_cli(&cli);
    uve_bench::figures::fig8(panel.as_deref(), &runner);
    std::process::exit(runner.finish());
}
