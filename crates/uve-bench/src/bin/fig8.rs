//! Fig. 8 — the main evaluation (panels A–E).
//!
//! Usage: `fig8 [--panel a|b|c|d|e] [--jobs N | --serial] [--quiet]`
//! (default: all panels, one worker per core).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panel = args
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let runner = uve_bench::Runner::from_args();
    uve_bench::figures::fig8(panel.as_deref(), &runner);
    std::process::exit(runner.finish());
}
