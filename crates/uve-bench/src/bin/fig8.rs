//! Fig. 8 — the main evaluation (panels A–E).
//!
//! Usage: `fig8 [--panel a|b|c|d|e] [--json PATH] [--jobs N | --serial]
//! [--quiet]` (default: all panels, one worker per core). `--json PATH`
//! additionally writes the headline geomeans (packed and unpacked
//! indirect chunking) and the MAMR-Ind observables to `PATH`, asserting
//! the packed MAMR-Ind speedup stays ≥ 1.0×.

use uve_bench::{Cli, Runner};

fn main() {
    let cli = Cli::parse();
    let panel = cli.value("--panel").map(str::to_string);
    let json = cli.value("--json").map(str::to_string);
    let runner = Runner::from_cli(&cli);
    uve_bench::figures::fig8(panel.as_deref(), &runner);
    if let Some(path) = json {
        uve_bench::figures::fig8_json(&path, &runner);
    }
    std::process::exit(runner.finish());
}
