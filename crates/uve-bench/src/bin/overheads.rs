//! Sec. VI-C — Streaming Engine hardware storage inventory.
fn main() {
    uve_bench::figures::overheads();
}
