//! The follow-on workload families (DSP + sparse) — per-kernel cycles,
//! vs-scalar speedups and stream stall attribution.
//!
//! Usage: `dsp [--json PATH] [--jobs N | --serial] [--quiet] [--explain]`.
//! `--json PATH` writes the drift-gated per-kernel artifact (see
//! `BENCH_dsp.json` at the repo root); the binary asserts no kernel's UVE
//! flavor regresses below its scalar twin and that each family's geomean
//! speedup stays above 1.0x.

use uve_bench::{Cli, Runner};

fn main() {
    let cli = Cli::parse();
    let json = cli.value("--json").map(str::to_string);
    let runner = Runner::from_cli(&cli);
    uve_bench::figures::dsp_families(json.as_deref(), &runner);
    std::process::exit(runner.finish());
}
