//! Shared command-line parsing for the figure binaries.
//!
//! Every binary under `src/bin` accepts the same core flags (`--jobs N`,
//! `--serial`, `--quiet`, `--explain`, `--timeout SECS`) plus a few
//! binary-specific ones; this module centralises the `--flag value`
//! scanning they previously each reimplemented. Unrecognized flags are
//! ignored, so binaries can layer their own on top of the
//! [`Runner`](crate::Runner) set.

/// Parsed command line: the raw argument list plus `--flag [value]`
/// accessors.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    args: Vec<String>,
}

impl Cli {
    /// Parses the process arguments (without the program name).
    pub fn parse() -> Self {
        Self::from_vec(std::env::args().skip(1).collect())
    }

    /// Builds a `Cli` from an explicit argument list (tests).
    pub fn from_vec(args: Vec<String>) -> Self {
        Self { args }
    }

    /// `true` if the boolean flag (e.g. `--quiet`) is present.
    pub fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    /// The argument following `flag` (e.g. `--out FILE`), if both exist.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// [`Cli::value`] parsed into `T`; `None` if the flag is absent or the
    /// value does not parse.
    pub fn parsed<T: std::str::FromStr>(&self, flag: &str) -> Option<T> {
        self.value(flag).and_then(|v| v.parse().ok())
    }

    /// Positional (non-flag) arguments, skipping the values of the listed
    /// value-taking flags.
    pub fn free(&self, value_flags: &[&str]) -> Vec<&str> {
        let mut out = Vec::new();
        let mut skip = false;
        for a in &self.args {
            if skip {
                skip = false;
                continue;
            }
            if value_flags.iter().any(|f| f == a) {
                skip = true;
                continue;
            }
            if !a.starts_with("--") {
                out.push(a.as_str());
            }
        }
        out
    }

    /// A comma-separated list value (`--kernels a,b,c`), empty when the
    /// flag is absent.
    pub fn list(&self, flag: &str) -> Vec<String> {
        self.value(flag)
            .map(|v| {
                v.split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::from_vec(args.iter().map(|s| (*s).to_string()).collect())
    }

    #[test]
    fn flags_and_values() {
        let c = cli(&["--jobs", "4", "--quiet", "saxpy", "--out", "x.json"]);
        assert!(c.has("--quiet"));
        assert!(!c.has("--serial"));
        assert_eq!(c.value("--out"), Some("x.json"));
        assert_eq!(c.parsed::<usize>("--jobs"), Some(4));
        assert_eq!(c.parsed::<usize>("--timeout"), None);
        assert_eq!(c.free(&["--jobs", "--out"]), vec!["saxpy"]);
    }

    #[test]
    fn lists_split_on_commas() {
        let c = cli(&["--kernels", "a,b,c", "--cores", "1,2,4"]);
        assert_eq!(c.list("--kernels"), vec!["a", "b", "c"]);
        assert_eq!(c.list("--cores"), vec!["1", "2", "4"]);
        assert!(c.list("--modes").is_empty());
    }

    #[test]
    fn missing_value_is_none() {
        let c = cli(&["--out"]);
        assert_eq!(c.value("--out"), None);
        assert!(c.free(&["--out"]).is_empty());
    }
}
