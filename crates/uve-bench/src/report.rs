//! Aggregated "where the cycles go" reporting over a set of measured runs.
//!
//! [`StatsReport`] collects the per-run [`TimingStats`] (already gathered
//! deterministically by the [`Runner`](crate::Runner)) and renders the
//! top-down cycle-attribution table printed by `--explain`, together with
//! per-stream FIFO occupancy summaries and per-class memory read latency
//! means. Everything in [`StatsReport::render`] is derived from integer
//! counters, so serial and parallel runs print bit-identical reports.

use crate::Measured;
use uve_cpu::{CycleAccount, TimingStats};
use uve_kernels::Flavor;
use uve_mem::{ReqClass, ServedBy};

/// One run's worth of observability data.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Kernel name.
    pub name: String,
    /// Code flavour.
    pub flavor: Flavor,
    /// Full timing statistics of the run.
    pub stats: TimingStats,
}

/// The aggregated report over a job list, in submission order.
#[derive(Debug, Clone, Default)]
pub struct StatsReport {
    /// One row per measured run.
    pub rows: Vec<ReportRow>,
}

/// Permille of `part` in `total`, rounded half-up — integer arithmetic so
/// the rendered percentages are bit-identical everywhere.
fn permille(part: u64, total: u64) -> u64 {
    (part * 1000 + total / 2).checked_div(total).unwrap_or(0)
}

/// Formats a permille value as a percentage with one decimal ("42.3").
fn pct(part: u64, total: u64) -> String {
    let pm = permille(part, total);
    format!("{}.{}", pm / 10, pm % 10)
}

impl StatsReport {
    /// Builds a report from measured runs, preserving their order.
    pub fn of(results: &[Measured]) -> Self {
        Self {
            rows: results
                .iter()
                .map(|m| ReportRow {
                    name: m.name.clone(),
                    flavor: m.flavor,
                    stats: m.stats.clone(),
                })
                .collect(),
        }
    }

    /// Verifies every conservation law on every row: the stall categories
    /// partition the cycles, the FIFO occupancy samples account for every
    /// open stream-cycle, and the memory latency profile accounts for
    /// every demand read and every DRAM read transaction.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated law, naming the run.
    pub fn check(&self) -> Result<(), String> {
        for r in &self.rows {
            let tag = format!("{}/{}", r.name, r.flavor);
            let s = &r.stats;
            s.account
                .check(s.cycles)
                .map_err(|e| format!("{tag}: {e}"))?;
            let fifo = &s.engine.fifo;
            if fifo.total() != fifo.samples {
                return Err(format!(
                    "{tag}: FIFO histogram holds {} samples but {} were taken",
                    fifo.total(),
                    fifo.samples
                ));
            }
            let prof = &s.mem.profile;
            let demand = prof.class_count(ReqClass::Demand) + prof.class_count(ReqClass::Stream);
            if demand != s.mem.reads {
                return Err(format!(
                    "{tag}: latency profile saw {demand} demand+stream reads, \
                     the hierarchy served {}",
                    s.mem.reads
                ));
            }
            if prof.served_count(ServedBy::Dram) != s.mem.dram.reads {
                return Err(format!(
                    "{tag}: latency profile saw {} DRAM-served reads, \
                     DRAM performed {} read transactions",
                    prof.served_count(ServedBy::Dram),
                    s.mem.dram.reads
                ));
            }
        }
        Ok(())
    }

    /// Renders the cycle-attribution table plus FIFO-occupancy and memory
    /// latency summaries as a deterministic string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("\n=== where the cycles go — top-down cycle attribution (% of cycles) ===\n");
        out.push_str(&format!(
            "{:<16} {:<7} {:>10}",
            "kernel", "flavor", "cycles"
        ));
        for c in CycleAccount::CATEGORIES {
            out.push_str(&format!(" {c:>6}"));
        }
        out.push('\n');
        for r in &self.rows {
            let s = &r.stats;
            out.push_str(&format!(
                "{:<16} {:<7} {:>10}",
                r.name,
                r.flavor.to_string(),
                s.cycles
            ));
            for v in s.account.values() {
                out.push_str(&format!(" {:>6}", pct(v, s.cycles)));
            }
            out.push('\n');
        }

        let streamed: Vec<&ReportRow> = self
            .rows
            .iter()
            .filter(|r| r.stats.engine.fifo.samples > 0)
            .collect();
        if !streamed.is_empty() {
            out.push_str(
                "\n=== stream FIFO occupancy (mean/max chunks; empty = head-stall cycles) ===\n",
            );
            for r in streamed {
                let s = &r.stats;
                let fifo = &s.engine.fifo;
                out.push_str(&format!("{:<16} {:<7}", r.name, r.flavor.to_string()));
                for u in fifo.used_registers() {
                    out.push_str(&format!(
                        " u{u}:{:.1}/{}", // mean occupancy / max occupancy
                        fifo.mean_occupancy(u),
                        fifo.max_occupancy(u)
                    ));
                    let empty = s.account.fifo_empty_by_u[u.min(31)];
                    if empty > 0 {
                        out.push_str(&format!("(empty {empty})"));
                    }
                }
                out.push('\n');
            }
        }

        out.push_str("\n=== memory read latency (class→level: mean cycles × requests) ===\n");
        for r in &self.rows {
            let prof = &r.stats.mem.profile;
            if prof.total_count() == 0 {
                continue;
            }
            out.push_str(&format!("{:<16} {:<7}", r.name, r.flavor.to_string()));
            for class in ReqClass::ALL {
                for served in ServedBy::ALL {
                    let h = prof.get(class, served);
                    if h.count > 0 {
                        out.push_str(&format!(
                            " {}→{}:{:.1}×{}",
                            class.name(),
                            served.name(),
                            h.mean(),
                            h.count
                        ));
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;
    use uve_cpu::CpuConfig;
    use uve_kernels::saxpy::Saxpy;

    #[test]
    fn report_checks_and_renders_a_real_run() {
        let cpu = CpuConfig::default();
        let results = [
            measure(&Saxpy::new(512), Flavor::Uve, &cpu),
            measure(&Saxpy::new(512), Flavor::Neon, &cpu),
        ];
        let report = StatsReport::of(&results);
        report.check().expect("conservation laws hold");
        let text = report.render();
        assert!(text.contains("where the cycles go"));
        assert!(text.contains("SAXPY"), "table names the kernel: {text}");
        // The UVE run streams, so the FIFO block must list its registers.
        assert!(text.contains("u0:"), "FIFO summary present: {text}");
        // Percentages partition the run: retiring column is present and
        // the header lists every category.
        for c in CycleAccount::CATEGORIES {
            assert!(text.contains(c), "missing category {c}");
        }
    }

    #[test]
    fn check_catches_a_leak() {
        let cpu = CpuConfig::default();
        let mut m = measure(&Saxpy::new(256), Flavor::Uve, &cpu);
        m.stats.account.retiring += 1;
        let report = StatsReport::of(&[m]);
        let err = report.check().expect_err("tampered account must fail");
        assert!(err.contains("leak"), "unexpected error: {err}");
    }

    #[test]
    fn percentages_are_integer_derived() {
        assert_eq!(pct(1, 3), "33.3");
        assert_eq!(pct(2, 3), "66.7");
        assert_eq!(pct(0, 0), "0.0");
        assert_eq!(pct(7, 7), "100.0");
    }
}
