//! The figure/table generators, callable from the `fig*` binaries and from
//! the `figures` bench target (`cargo bench --bench figures` regenerates
//! every figure).
//!
//! Every generator builds its full job list up front and hands it to the
//! sharded [`Runner`], which spreads the `(kernel, flavor, config)` points
//! across cores and reuses one functional trace per
//! `(kernel, flavor, vlen, stream level)` — the sensitivity sweeps replay
//! a cached trace under each timing configuration instead of re-emulating.
//! Output is formatted from the returned vector (submission order), so
//! serial and parallel runs print bit-identical figures.

use crate::runner::{Job, Runner};
use crate::{geomean, header, row, Measured};
use uve_core::engine::EngineConfig;
use uve_core::IndirectPacking;
use uve_cpu::CpuConfig;
use uve_isa::MemLevel;
use uve_kernels::{
    evaluation_suite, gemm::Gemm, gemm::GemmUnrolled, jacobi::Jacobi2d, mamr::Mamr, stream::Stream,
    threemm::ThreeMm, Benchmark, Flavor,
};
use uve_stream::StateSizeReport;

struct KernelRuns {
    name: String,
    sve_vectorized: bool,
    uve: Measured,
    sve: Measured,
    neon: Measured,
}

/// The Fig. 8 flavours, in the fixed per-kernel job order.
const SUITE_FLAVORS: [Flavor; 3] = [Flavor::Uve, Flavor::Sve, Flavor::Neon];

fn suite_runs(runner: &Runner) -> Vec<KernelRuns> {
    let suite = evaluation_suite();
    let cpu = CpuConfig::default();
    let jobs: Vec<Job> = suite
        .iter()
        .flat_map(|bench| {
            SUITE_FLAVORS.map(|flavor| {
                Job::new(bench.as_ref(), flavor, cpu.clone()).exec(runner.exec_mode())
            })
        })
        .collect();
    let results = runner.run(&jobs);
    runner.maybe_explain(&results);
    let mut results = results.into_iter();
    suite
        .iter()
        .map(|bench| KernelRuns {
            name: bench.name().to_string(),
            sve_vectorized: bench.sve_vectorized(),
            uve: results.next().expect("uve run"),
            sve: results.next().expect("sve run"),
            neon: results.next().expect("neon run"),
        })
        .collect()
}

fn sensitivity_subset() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Gemm::new(32, 32, 32)),
        Box::new(Jacobi2d::new(64, 2)),
        Box::new(Stream::new(49152)),
        Box::new(Mamr::full(128)),
    ]
}

/// Asserts the trace-reuse invariant of a sweep: running `jobs` timing
/// points over `points` distinct functional points must have cost at most
/// `points` fresh emulations (exactly `points` on a cold runner).
fn assert_trace_reuse(runner: &Runner, before: u64, points: usize, what: &str) {
    let fresh = runner.emulations() - before;
    assert!(
        fresh <= points as u64,
        "{what}: {fresh} emulations for {points} functional points — \
         the sweep re-emulated instead of replaying cached traces"
    );
}

/// Fig. 8, panels A–E. `panel` restricts output (`a`..`e`); `None` = all.
pub fn fig8(panel: Option<&str>, runner: &Runner) {
    if let Some(p) = panel {
        assert!(
            matches!(p, "a" | "b" | "c" | "d" | "e"),
            "unknown panel {p:?}: expected one of a, b, c, d, e"
        );
    }
    let want = |p: &str| panel.is_none_or(|x| x == p);
    let runs = if want("a") || want("b") || want("c") || want("d") {
        suite_runs(runner)
    } else {
        Vec::new()
    };

    if want("a") {
        header(
            "Fig. 8.A — committed-instruction reduction (1 - UVE/baseline)",
            &["vs SVE", "vs NEON"],
        );
        let mut vs_sve = Vec::new();
        let mut vs_neon = Vec::new();
        for r in &runs {
            let a1 = if r.sve_vectorized {
                let v = 1.0 - r.uve.committed as f64 / r.sve.committed as f64;
                vs_sve.push(1.0 - v);
                format!("{:.1}%", 100.0 * v)
            } else {
                "n/v".to_string()
            };
            let a2 = 1.0 - r.uve.committed as f64 / r.neon.committed as f64;
            vs_neon.push(1.0 - a2);
            row(&r.name, &[a1, format!("{:.1}%", 100.0 * a2)]);
        }
        println!(
            "average reduction: vs SVE {:.1}% (paper: 60.9%), vs NEON {:.1}% (paper: 93.2%)",
            100.0 * (1.0 - geomean(&vs_sve)),
            100.0 * (1.0 - geomean(&vs_neon)),
        );
    }

    if want("b") {
        header("Fig. 8.B — speed-up of UVE", &["vs SVE", "vs NEON"]);
        let mut su = Vec::new();
        for r in &runs {
            let b1 = if r.sve_vectorized {
                let v = r.sve.cycles() as f64 / r.uve.cycles() as f64;
                su.push(v);
                format!("{v:.2}x")
            } else {
                "n/v".to_string()
            };
            let b2 = r.neon.cycles() as f64 / r.uve.cycles() as f64;
            row(&r.name, &[b1, format!("{b2:.2}x")]);
        }
        println!(
            "average speed-up vs SVE (vectorized kernels): {:.2}x (paper: 2.4x)",
            geomean(&su)
        );
    }

    if want("c") {
        header(
            "Fig. 8.C — rename blocks per cycle",
            &["UVE", "SVE", "NEON"],
        );
        let mut uve_b = Vec::new();
        let mut sve_b = Vec::new();
        for r in &runs {
            if r.sve_vectorized {
                uve_b.push(r.uve.stats.rename_blocks_per_cycle());
                sve_b.push(r.sve.stats.rename_blocks_per_cycle());
            }
            row(
                &r.name,
                &[
                    format!("{:.3}", r.uve.stats.rename_blocks_per_cycle()),
                    format!("{:.3}", r.sve.stats.rename_blocks_per_cycle()),
                    format!("{:.3}", r.neon.stats.rename_blocks_per_cycle()),
                ],
            );
        }
        let ua: f64 = uve_b.iter().sum::<f64>() / uve_b.len() as f64;
        let sa: f64 = sve_b.iter().sum::<f64>() / sve_b.len() as f64;
        println!(
            "average (vectorized kernels): UVE {ua:.3}, SVE {sa:.3} → {:.1}% fewer (paper: 33.4%)",
            100.0 * (1.0 - ua / sa)
        );
    }

    if want("d") {
        header(
            "Fig. 8.D — DRAM bus utilization (read+write)/peak",
            &["UVE", "SVE", "NEON"],
        );
        for r in &runs {
            row(
                &r.name,
                &[
                    format!("{:.3}", r.uve.stats.bus_utilization),
                    format!("{:.3}", r.sve.stats.bus_utilization),
                    format!("{:.3}", r.neon.stats.bus_utilization),
                ],
            );
        }
    }

    if want("e") {
        header(
            "Fig. 8.E — GEMM speed-up from UVE loop unrolling (vs no unrolling)",
            &["factor", "speed-up"],
        );
        let cpu = CpuConfig::default();
        let factors = [1usize, 2, 4, 8];
        let unrolled: Vec<GemmUnrolled> = factors
            .iter()
            .map(|&f| GemmUnrolled::new(32, 128, 32, f))
            .collect();
        let jobs: Vec<Job> = unrolled
            .iter()
            .map(|b| Job::new(b, Flavor::Uve, cpu.clone()).exec(runner.exec_mode()))
            .collect();
        let results = runner.run(&jobs);
        runner.maybe_explain(&results);
        let base = results[0].cycles();
        for (factor, m) in factors[1..].iter().zip(&results[1..]) {
            row(
                "GEMM",
                &[
                    format!("{factor}"),
                    format!("{:.2}x", base as f64 / m.cycles() as f64),
                ],
            );
        }
    }
}

/// Writes the Fig. 8 headline numbers to `path` as JSON: the panel-B
/// speed-up geomeans under packed (default) and unpacked indirect
/// chunking, plus the MAMR-Ind observables of the packing fix.
///
/// # Panics
///
/// Panics if MAMR-Ind's packed UVE run is *slower* than its scalar
/// baseline (speedup < 1.0×) — the paper reports a clear UVE win there,
/// and losing it means the packed chunking regressed.
pub fn fig8_json(path: &str, runner: &Runner) {
    let runs = suite_runs(runner);
    let cpu = CpuConfig::default();
    // The same UVE points with packing off; SVE/NEON baselines have no
    // indirect streams and are reused as-is.
    let suite = evaluation_suite();
    let unpacked_jobs: Vec<Job> = suite
        .iter()
        .map(|bench| Job {
            packing: IndirectPacking::Unpacked,
            ..Job::new(bench.as_ref(), Flavor::Uve, cpu.clone()).exec(runner.exec_mode())
        })
        .collect();
    let unpacked = runner.run(&unpacked_jobs);

    let speedups = |uve: &dyn Fn(usize) -> u64| -> (f64, f64) {
        let mut vs_sve = Vec::new();
        let mut vs_neon = Vec::new();
        for (i, r) in runs.iter().enumerate() {
            if r.sve_vectorized {
                vs_sve.push(r.sve.cycles() as f64 / uve(i) as f64);
            }
            vs_neon.push(r.neon.cycles() as f64 / uve(i) as f64);
        }
        (geomean(&vs_sve), geomean(&vs_neon))
    };
    let (packed_sve, packed_neon) = speedups(&|i| runs[i].uve.cycles());
    let (unpacked_sve, unpacked_neon) = speedups(&|i| unpacked[i].cycles());

    let mi = runs
        .iter()
        .position(|r| r.name == "MAMR-Ind")
        .expect("MAMR-Ind in the evaluation suite");
    // MAMR kernels are not compiler-vectorized: the NEON-flavor run is
    // the scalar baseline of the EXPERIMENTS.md attribution.
    let scalar = runs[mi].neon.cycles();
    let mamr_packed = runs[mi].uve.cycles();
    let mamr_unpacked = unpacked[mi].cycles();
    let packed_speedup = scalar as f64 / mamr_packed as f64;
    let unpacked_speedup = scalar as f64 / mamr_unpacked as f64;
    assert!(
        packed_speedup >= 1.0,
        "MAMR-Ind packed UVE speedup {packed_speedup:.3}x < 1.0x vs scalar \
         ({mamr_packed} vs {scalar} cycles) — the indirect-packing fix regressed"
    );

    let json = format!(
        "{{\n  \"figure\": \"fig8\",\n  \"packed\": {{\n    \
         \"geomean_speedup_vs_sve\": {packed_sve:.4},\n    \
         \"geomean_speedup_vs_neon\": {packed_neon:.4}\n  }},\n  \
         \"unpacked\": {{\n    \
         \"geomean_speedup_vs_sve\": {unpacked_sve:.4},\n    \
         \"geomean_speedup_vs_neon\": {unpacked_neon:.4}\n  }},\n  \
         \"mamr_ind\": {{\n    \
         \"uve_packed_cycles\": {mamr_packed},\n    \
         \"uve_unpacked_cycles\": {mamr_unpacked},\n    \
         \"scalar_cycles\": {scalar},\n    \
         \"speedup_packed\": {packed_speedup:.4},\n    \
         \"speedup_unpacked\": {unpacked_speedup:.4}\n  }}\n}}\n"
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!(
        "fig8 json -> {path} (MAMR-Ind packed {packed_speedup:.2}x, \
         unpacked {unpacked_speedup:.2}x vs scalar)"
    );
}

/// Fig. 9 — physical-vector-register sensitivity (UVE flat, SVE gains).
///
/// Each `(kernel, flavor)` point is emulated once; the three PVR
/// configurations replay the cached trace.
pub fn fig9(runner: &Runner) {
    let pvrs = [48usize, 64, 96];
    let benches = sensitivity_subset();
    let flavors = [Flavor::Uve, Flavor::Sve];
    let before = runner.emulations();
    let jobs: Vec<Job> = flavors
        .iter()
        .flat_map(|&flavor| {
            benches.iter().flat_map(move |bench| {
                pvrs.map(|pvr| {
                    let cpu = CpuConfig {
                        vec_prf: pvr,
                        ..CpuConfig::default()
                    };
                    Job::new(bench.as_ref(), flavor, cpu).exec(runner.exec_mode())
                })
            })
        })
        .collect();
    let results = runner.run(&jobs);
    runner.maybe_explain(&results);
    assert_trace_reuse(runner, before, flavors.len() * benches.len(), "fig9");

    let mut chunks = results.chunks_exact(pvrs.len());
    for flavor in flavors {
        header(
            &format!("Fig. 9 — {flavor}: speed-up vs 48 physical vector registers"),
            &["PVR=48", "PVR=64", "PVR=96"],
        );
        for bench in &benches {
            let sweep = chunks.next().expect("one sweep per kernel");
            let base = sweep[0].cycles();
            let cells: Vec<String> = sweep
                .iter()
                .map(|m| format!("{:.2}x", base as f64 / m.cycles() as f64))
                .collect();
            row(bench.name(), &cells);
        }
    }
}

/// Fig. 10 — FIFO-depth sensitivity (≥4 required; MAMR most sensitive).
///
/// FIFO depth is a timing-only knob: one emulation per kernel, four
/// replays.
pub fn fig10(runner: &Runner) {
    let depths = [2usize, 4, 8, 12];
    header(
        "Fig. 10 — UVE speed-up vs FIFO depth 8",
        &["d=2", "d=4", "d=8", "d=12"],
    );
    let mut benches = sensitivity_subset();
    benches.insert(1, Box::new(ThreeMm::new(32)));
    let before = runner.emulations();
    let jobs: Vec<Job> = benches
        .iter()
        .flat_map(|bench| {
            depths.map(|d| {
                let cpu = CpuConfig {
                    engine: EngineConfig {
                        fifo_depth: d,
                        ..EngineConfig::default()
                    },
                    ..CpuConfig::default()
                };
                Job::new(bench.as_ref(), Flavor::Uve, cpu).exec(runner.exec_mode())
            })
        })
        .collect();
    let results = runner.run(&jobs);
    runner.maybe_explain(&results);
    assert_trace_reuse(runner, before, benches.len(), "fig10");
    for (bench, sweep) in benches.iter().zip(results.chunks_exact(depths.len())) {
        let base = sweep[2].cycles() as f64;
        row(
            bench.name(),
            &sweep
                .iter()
                .map(|m| format!("{:.2}x", base / m.cycles() as f64))
                .collect::<Vec<_>>(),
        );
    }
}

/// Fig. 11 — streaming cache-level sensitivity (L2 best overall).
///
/// The stream level changes the functional trace, so each
/// `(kernel, level)` point is one emulation — but still only one, shared
/// with any later sweep over the same point.
pub fn fig11(runner: &Runner) {
    let levels = [MemLevel::L1, MemLevel::L2, MemLevel::Mem];
    header(
        "Fig. 11 — UVE speed-up vs streaming level (normalized to L2)",
        &["L1", "L2", "DRAM"],
    );
    let benches = sensitivity_subset();
    let cpu = CpuConfig::default();
    let before = runner.emulations();
    let jobs: Vec<Job> = benches
        .iter()
        .flat_map(|bench| {
            levels.map(|level| Job {
                stream_level: level,
                ..Job::new(bench.as_ref(), Flavor::Uve, cpu.clone()).exec(runner.exec_mode())
            })
        })
        .collect();
    let results = runner.run(&jobs);
    runner.maybe_explain(&results);
    assert_trace_reuse(runner, before, benches.len() * levels.len(), "fig11");
    for (bench, sweep) in benches.iter().zip(results.chunks_exact(levels.len())) {
        let base = sweep[1].cycles() as f64;
        row(
            bench.name(),
            &sweep
                .iter()
                .map(|m| format!("{:.2}x", base / m.cycles() as f64))
                .collect::<Vec<_>>(),
        );
    }
}

/// Sec. VI-B — Stream Processing Module count sensitivity (<0.1% changes).
pub fn modules(runner: &Runner) {
    let counts = [2usize, 4, 8];
    header(
        "Sec. VI-B — UVE speed-up vs 2 Stream Processing Modules",
        &["m=2", "m=4", "m=8"],
    );
    let benches = sensitivity_subset();
    let before = runner.emulations();
    let jobs: Vec<Job> = benches
        .iter()
        .flat_map(|bench| {
            counts.map(|m| {
                let cpu = CpuConfig {
                    engine: EngineConfig {
                        processing_modules: m,
                        ..EngineConfig::default()
                    },
                    ..CpuConfig::default()
                };
                Job::new(bench.as_ref(), Flavor::Uve, cpu).exec(runner.exec_mode())
            })
        })
        .collect();
    let results = runner.run(&jobs);
    runner.maybe_explain(&results);
    assert_trace_reuse(runner, before, benches.len(), "modules");
    for (bench, sweep) in benches.iter().zip(results.chunks_exact(counts.len())) {
        let base = sweep[0].cycles() as f64;
        row(
            bench.name(),
            &sweep
                .iter()
                .map(|m| format!("{:.4}x", base / m.cycles() as f64))
                .collect::<Vec<_>>(),
        );
    }
}

/// Sec. VI-C — hardware storage inventory.
pub fn overheads() {
    fn report(name: &str, cfg: &EngineConfig) {
        let r = cfg.storage_report();
        println!("\n{name}:");
        println!(
            "  streams={} dims={} mods={} fifo_depth={}",
            cfg.max_streams, cfg.max_dims, cfg.max_mods, cfg.fifo_depth
        );
        println!(
            "  Stream Table + SCROB : {:>6} B ({:.1} KB)",
            r.stream_table_bytes,
            r.stream_table_bytes as f64 / 1024.0
        );
        println!(
            "  Load/Store FIFOs     : {:>6} B ({:.1} KB)",
            r.fifo_bytes,
            r.fifo_bytes as f64 / 1024.0
        );
        println!("  Memory Request Queue : {:>6} B", r.request_queue_bytes);
        println!(
            "  total                : {:>6} B ({:.1} KB, {:.1}% of a 64 KB L1)",
            r.total_bytes(),
            r.total_bytes() as f64 / 1024.0,
            100.0 * r.total_bytes() as f64 / (64.0 * 1024.0)
        );
    }
    println!("=== Sec. VI-C — Streaming Engine storage ===");
    report("default configuration (Table I)", &EngineConfig::default());
    report(
        "reduced configuration (8 streams, 4 dims)",
        &EngineConfig {
            max_streams: 8,
            max_dims: 4,
            ..EngineConfig::default()
        },
    );
    let ctx = StateSizeReport::architectural();
    println!(
        "\nper-stream context-switch state: {} B (1-D) … {} B (8-D + 7 modifiers); paper: 32-400 B",
        ctx.min_bytes, ctx.max_bytes
    );
}

/// The follow-on workload families (PR 10): DSP (FIR, ChanEst, FFT-Stage)
/// and sparse (SpMV, GatherReduce, Histogram), timed in the UVE and scalar
/// flavors at the evaluation sizes.
///
/// Prints per-kernel cycles, the vs-scalar speedup, and the two
/// stream-relevant stall attributions of the UVE run — `fifo-empty` (the
/// core outran the streaming engine) and `prf` (rename starved for
/// physical registers) — then asserts no kernel regresses below its scalar
/// twin and each family's geomean stays above 1.0x. With `json`,
/// additionally writes the drift-gated artifact: every
/// number in it is deterministic, so any perf change shows up as a
/// reviewable diff to the checked-in `BENCH_dsp.json`.
pub fn dsp_families(json: Option<&str>, runner: &Runner) {
    let cpu = CpuConfig::default();
    let families: [(&str, Vec<Box<dyn Benchmark>>); 2] = [
        ("dsp", uve_kernels::dsp_suite()),
        ("sparse", uve_kernels::sparse_suite()),
    ];
    let jobs: Vec<Job> = families
        .iter()
        .flat_map(|(_, suite)| {
            suite.iter().flat_map(|bench| {
                [Flavor::Uve, Flavor::Scalar].map(|flavor| {
                    Job::new(bench.as_ref(), flavor, cpu.clone()).exec(runner.exec_mode())
                })
            })
        })
        .collect();
    let results = runner.run(&jobs);
    runner.maybe_explain(&results);

    header(
        "Follow-on families — UVE vs scalar (cycles, stall attribution)",
        &["family", "UVE", "scalar", "speedup", "fifo-empty", "prf"],
    );
    let mut rows = Vec::new();
    let mut it = results.into_iter();
    for (family, suite) in &families {
        let mut speedups = Vec::new();
        for bench in suite {
            let uve = it.next().expect("uve run");
            let scalar = it.next().expect("scalar run");
            let speedup = scalar.cycles() as f64 / uve.cycles() as f64;
            let fifo = 100.0 * uve.stats.account.fifo_empty as f64 / uve.cycles() as f64;
            let prf = 100.0 * uve.stats.account.prf_starved as f64 / uve.cycles() as f64;
            row(
                bench.name(),
                &[
                    (*family).to_string(),
                    uve.cycles().to_string(),
                    scalar.cycles().to_string(),
                    format!("{speedup:.2}x"),
                    format!("{fifo:.1}%"),
                    format!("{prf:.1}%"),
                ],
            );
            // Histogram is scatter-serialized and sits at parity with its
            // scalar twin; the floor catches real regressions, not the
            // memory-bound tie.
            assert!(
                speedup >= 0.95,
                "{}: UVE {} cycles vs scalar {} — a follow-on kernel regressed below \
                 its scalar twin",
                bench.name(),
                uve.cycles(),
                scalar.cycles()
            );
            speedups.push(speedup);
            rows.push((
                (*family).to_string(),
                bench.name().to_string(),
                uve.cycles(),
                scalar.cycles(),
                speedup,
            ));
        }
        let family_geomean = geomean(&speedups);
        println!("{family} geomean speedup vs scalar: {family_geomean:.2}x");
        assert!(
            family_geomean >= 1.0,
            "{family} family geomean {family_geomean:.3}x < 1.0x vs scalar"
        );
    }

    if let Some(path) = json {
        use std::fmt::Write;
        let mut out = String::from("{\n  \"figure\": \"dsp\",\n  \"kernels\": [\n");
        for (i, (family, name, uve, scalar, speedup)) in rows.iter().enumerate() {
            let sep = if i + 1 == rows.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{ \"family\": \"{family}\", \"kernel\": \"{name}\", \
                 \"uve_cycles\": {uve}, \"scalar_cycles\": {scalar}, \
                 \"speedup_vs_scalar\": {speedup:.4} }}{sep}"
            );
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, &out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("dsp json -> {path}");
    }
}
