//! **UVE** — a complete Rust reproduction of *"Unlimited Vector Extension
//! with Data Streaming Support"* (ISCA 2021).
//!
//! This facade crate re-exports the whole system:
//!
//! - [`stream`]: descriptor-based memory access patterns (Sec. II),
//! - [`isa`]: the UVE/SVE-like/scalar instruction sets, assembler and
//!   binary encoding (Sec. III),
//! - [`mem`]: the Table I memory hierarchy (caches, prefetchers, DRAM,
//!   TLB),
//! - [`core`]: the functional stream unit, emulator, and the cycle-level
//!   Streaming Engine (Sec. IV),
//! - [`cpu`]: the out-of-order timing model (Sec. V),
//! - [`kernels`]: the 19 evaluation benchmarks (Fig. 8),
//! - [`bench`]: the evaluation harness, including the parallel sharded
//!   [`bench::runner`] with functional-trace reuse,
//! - [`smp`]: the multicore timing model — lockstep cores over the
//!   MOESI-snooped shared hierarchy, data-parallel trace sharding, and
//!   preemptive multiprogramming with stream-context save/restore.
//!
//! The most common types are additionally re-exported at the crate root.
//!
//! # Example
//!
//! ```rust
//! use uve::{assemble, CpuConfig, EmuConfig, Emulator, Memory, OoOCore};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("sum", "
//!     li x10, 64
//!     li x11, 0x1000
//!     li x13, 1
//!     ss.ld.w u0, x11, x10, x13
//!     so.v.dup.w.fp u5, f31
//! loop:
//!     so.a.hadd.w.fp u6, u0, p0
//!     so.a.add.w.fp u5, u5, u6, p0
//!     so.b.nend u0, loop
//!     halt
//! ")?;
//! let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
//! emu.mem.write_f32_slice(0x1000, &vec![0.5; 64]);
//! let result = emu.run(&program)?;
//! assert_eq!(emu.v(uve::isa::VReg::new(5)).float(0), 32.0);
//!
//! let stats = OoOCore::new(CpuConfig::default()).run(&result.trace);
//! assert!(stats.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use uve_bench as bench;
pub use uve_core as core;
pub use uve_cpu as cpu;
pub use uve_isa as isa;
pub use uve_kernels as kernels;
pub use uve_mem as mem;
pub use uve_smp as smp;
pub use uve_stream as stream;

pub use uve_core::{EmuConfig, Emulator, Trace};
pub use uve_cpu::{CpuConfig, OoOCore, TimingStats};
pub use uve_isa::{assemble, Inst, Program};
pub use uve_mem::Memory;
pub use uve_stream::{ElemWidth, Pattern, Walker};
