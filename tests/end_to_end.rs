//! Cross-crate integration: every evaluation kernel, in every flavour, runs
//! through assembler → emulator → correctness oracle → timing model.

use uve::cpu::{CpuConfig, OoOCore};
use uve::kernels::{run_checked, Benchmark, Flavor};

/// Small instances of the whole suite (fast enough for CI).
fn small_suite() -> Vec<Box<dyn Benchmark>> {
    use uve::kernels::*;
    vec![
        Box::new(memcpy::Memcpy::new(100)),
        Box::new(stream::Stream::new(80)),
        Box::new(saxpy::Saxpy::new(100)),
        Box::new(gemm::Gemm::new(5, 16, 6)),
        Box::new(threemm::ThreeMm::new(16)),
        Box::new(mvt::Mvt::new(20)),
        Box::new(gemver::Gemver::new(20)),
        Box::new(trisolv::Trisolv::new(20)),
        Box::new(jacobi::Jacobi1d::new(50, 2)),
        Box::new(jacobi::Jacobi2d::new(10, 2)),
        Box::new(irsmk::Irsmk::new(600)),
        Box::new(haccmk::Haccmk::new(20)),
        Box::new(knn::Knn::new(20, 8)),
        Box::new(covariance::Covariance::new(16, 12)),
        Box::new(mamr::Mamr::full(20)),
        Box::new(mamr::Mamr::diag(20)),
        Box::new(mamr::Mamr::indirect(12)),
        Box::new(seidel::Seidel2d::new(8, 2)),
        Box::new(floyd::FloydWarshall::new(10)),
    ]
}

#[test]
fn every_kernel_correct_in_every_flavor() {
    for bench in small_suite() {
        for flavor in Flavor::all() {
            run_checked(bench.as_ref(), flavor).unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn uve_always_commits_fewer_instructions_than_scalar() {
    for bench in small_suite() {
        let uve = run_checked(bench.as_ref(), Flavor::Uve).unwrap();
        let scalar = run_checked(bench.as_ref(), Flavor::Scalar).unwrap();
        assert!(
            uve.result.committed < scalar.result.committed,
            "{}: UVE {} !< scalar {}",
            bench.name(),
            uve.result.committed,
            scalar.result.committed
        );
    }
}

#[test]
fn timing_model_runs_every_kernel_trace() {
    let core = OoOCore::new(CpuConfig::default());
    for bench in small_suite() {
        let uve = run_checked(bench.as_ref(), Flavor::Uve).unwrap();
        let stats = core.run(&uve.result.trace);
        assert!(stats.cycles > 0, "{}", bench.name());
        assert_eq!(stats.committed, uve.result.trace.committed());
    }
}

#[test]
fn traces_expose_stream_structure() {
    for bench in small_suite() {
        let uve = run_checked(bench.as_ref(), Flavor::Uve).unwrap();
        let t = &uve.result.trace;
        assert!(!t.streams.is_empty(), "{} has no streams", bench.name());
        // Every consumed chunk index must exist in its stream's side table.
        for op in &t.ops {
            for &(inst, chunk) in op.stream_reads.iter().chain(&op.stream_writes) {
                assert!(
                    (chunk as usize) < t.streams[inst as usize].chunks.len(),
                    "{}: dangling chunk reference",
                    bench.name()
                );
            }
        }
        // Scalar flavours never touch streams.
        let scalar = run_checked(bench.as_ref(), Flavor::Scalar).unwrap();
        assert!(scalar.result.trace.streams.is_empty());
    }
}

#[test]
fn neon_flavor_runs_narrow_vectors() {
    let bench = uve::kernels::saxpy::Saxpy::new(64);
    let neon = run_checked(&bench, Flavor::Neon).unwrap();
    let sve = run_checked(&bench, Flavor::Sve).unwrap();
    // Fixed 128-bit vectors execute ~4x the vector iterations.
    assert!(neon.result.committed > 2 * sve.result.committed);
}
