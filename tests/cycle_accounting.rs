//! Conservation laws of the cycle-accounting observability layer, checked
//! over the full 19-kernel evaluation suite.
//!
//! For every kernel × flavor (UVE, SVE, NEON) — and additionally for UVE
//! at 16- and 32-byte vector lengths — one timing run must satisfy:
//!
//! - **cycle conservation**: the top-down stall categories sum exactly to
//!   the run's cycles, and the per-stream-register breakdowns sum to
//!   their totals ([`CycleAccount::check`]);
//! - **FIFO-sample conservation**: the occupancy histogram holds exactly
//!   one sample per open stream per engine cycle;
//! - **memory-profile conservation**: the latency profile records exactly
//!   one sample per demand/stream read, per-histogram bucket counts sum
//!   to the sample counts, and the DRAM-served samples equal the DRAM
//!   read transactions.
//!
//! A leak in any law means a cycle (or request) was attributed twice or
//! not at all — the `--explain` tables would silently lie.

use uve::bench::{default_jobs, run_indexed, RunMode};
use uve::core::{EmuConfig, Emulator, Trace};
use uve::cpu::{CpuConfig, OoOCore, TimingStats};
use uve::kernels::{evaluation_suite, Benchmark, Flavor};
use uve::mem::{Memory, ReqClass, ServedBy};

/// Emulates `bench`/`flavor` at an explicit vector length and returns the
/// checked trace.
fn trace_at(bench: &dyn Benchmark, flavor: Flavor, vlen_bytes: usize) -> Trace {
    let cfg = EmuConfig {
        vlen_bytes,
        ..EmuConfig::default()
    };
    let mut emu = Emulator::new(cfg, Memory::new());
    bench.setup(&mut emu);
    let result = emu
        .run(&bench.program(flavor))
        .unwrap_or_else(|e| panic!("{}/{flavor}@vl{vlen_bytes}: {e}", bench.name()));
    bench
        .check(&emu)
        .unwrap_or_else(|e| panic!("{}/{flavor}@vl{vlen_bytes}: {e}", bench.name()));
    result.trace
}

/// Asserts every conservation law on one run's statistics.
fn assert_conserved(tag: &str, s: &TimingStats) {
    // 1. Cycle conservation.
    s.account
        .check(s.cycles)
        .unwrap_or_else(|e| panic!("{tag}: {e}"));

    // 2. FIFO-sample conservation: the histogram is exactly the multiset
    // of per-cycle occupancy samples.
    let fifo = &s.engine.fifo;
    assert_eq!(
        fifo.total(),
        fifo.samples,
        "{tag}: FIFO histogram lost samples"
    );

    // 3. Memory-profile conservation.
    let prof = &s.mem.profile;
    assert_eq!(
        prof.class_count(ReqClass::Demand) + prof.class_count(ReqClass::Stream),
        s.mem.reads,
        "{tag}: one latency sample per demand/stream read"
    );
    assert_eq!(
        prof.served_count(ServedBy::Dram),
        s.mem.dram.reads,
        "{tag}: one DRAM-served sample per DRAM read transaction"
    );
    for class in ReqClass::ALL {
        for served in ServedBy::ALL {
            let h = prof.get(class, served);
            assert_eq!(
                h.bucket_total(),
                h.count,
                "{tag}: {}→{} histogram buckets lost samples",
                class.name(),
                served.name()
            );
        }
    }
}

/// Small instances of the full 19-kernel suite — conservation is a
/// per-cycle structural property, so small sizes prove it as well as the
/// figure-generation sizes while keeping tier-1 fast (the full-size UVE
/// sweep below spot-checks the big traces).
fn small_suite() -> Vec<Box<dyn Benchmark>> {
    use uve::kernels::*;
    vec![
        Box::new(memcpy::Memcpy::new(300)),
        Box::new(stream::Stream::new(200)),
        Box::new(saxpy::Saxpy::new(300)),
        Box::new(gemm::Gemm::new(6, 16, 6)),
        Box::new(threemm::ThreeMm::new(16)),
        Box::new(mvt::Mvt::new(24)),
        Box::new(gemver::Gemver::new(24)),
        Box::new(trisolv::Trisolv::new(24)),
        Box::new(jacobi::Jacobi1d::new(80, 2)),
        Box::new(jacobi::Jacobi2d::new(12, 2)),
        Box::new(irsmk::Irsmk::new(600)),
        Box::new(haccmk::Haccmk::new(24)),
        Box::new(knn::Knn::new(32, 8)),
        Box::new(covariance::Covariance::new(16, 12)),
        Box::new(mamr::Mamr::full(24)),
        Box::new(mamr::Mamr::diag(24)),
        Box::new(mamr::Mamr::indirect(16)),
        Box::new(seidel::Seidel2d::new(10, 2)),
        Box::new(floyd::FloydWarshall::new(12)),
    ]
}

#[test]
fn every_cycle_attributed_across_suite_flavors_and_vlens() {
    let suite = small_suite();
    // (kernel index, flavor, vector length in bytes).
    let mut points: Vec<(usize, Flavor, usize)> = Vec::new();
    for i in 0..suite.len() {
        for flavor in [Flavor::Uve, Flavor::Sve, Flavor::Neon] {
            points.push((i, flavor, flavor.vlen_bytes()));
        }
        // The UVE stream semantics are vector-length-invariant; the
        // accounting must stay conserved when the lane count changes.
        for vlen in [16usize, 32] {
            points.push((i, Flavor::Uve, vlen));
        }
    }

    let cpu = CpuConfig::default();
    let checked = run_indexed(
        RunMode::Parallel(default_jobs()),
        points.len(),
        |p| -> String {
            let (i, flavor, vlen) = points[p];
            let bench = &suite[i];
            let trace = trace_at(bench.as_ref(), flavor, vlen);
            let stats = OoOCore::new(cpu.clone()).run(&trace);
            let tag = format!("{}/{flavor}@vl{vlen}", bench.name());
            assert!(stats.cycles > 0, "{tag}: empty run");
            assert_conserved(&tag, &stats);
            // Streaming flavors must actually exercise the FIFO sampler.
            if flavor == Flavor::Uve {
                assert!(stats.engine.fifo.samples > 0, "{tag}: no FIFO samples");
            }
            tag
        },
    );
    assert_eq!(checked.len(), suite.len() * 5);
}

#[test]
fn full_size_uve_suite_stays_conserved() {
    // The figure-generation problem sizes, UVE flavor: the traces the
    // paper's tables are actually built from.
    let suite = evaluation_suite();
    let cpu = CpuConfig::default();
    run_indexed(RunMode::Parallel(default_jobs()), suite.len(), |i| {
        let bench = &suite[i];
        let trace = trace_at(bench.as_ref(), Flavor::Uve, Flavor::Uve.vlen_bytes());
        let stats = OoOCore::new(cpu.clone()).run(&trace);
        assert_conserved(&format!("{}/UVE full-size", bench.name()), &stats);
    });
}

#[test]
fn warm_replay_stays_conserved() {
    // The warm-run methodology (Runner/figures path) must obey the same
    // laws: reset_stats between passes has to zero every counter the
    // accounting reads, or the second pass double-counts.
    let bench = uve::kernels::saxpy::Saxpy::new(4096);
    let trace = trace_at(&bench, Flavor::Uve, Flavor::Uve.vlen_bytes());
    let core = OoOCore::new(CpuConfig::default());
    let warm = core.run_warm(&trace);
    assert_conserved("SAXPY/UVE warm", &warm);

    // Regression for the stats-reset bug: the TLB's hit/miss counters are
    // now cleared between passes while its entries stay warm, so the
    // reported (second) pass must see a fully warm TLB: hits, no misses.
    assert_eq!(
        warm.mem.tlb_misses, 0,
        "second pass must start from zeroed counters with warm TLB entries"
    );
    assert!(
        warm.mem.tlb_hits > 0,
        "stream requests translate via the TLB"
    );

    // And the cold run of the same trace *does* miss, proving the warm
    // number above comes from state reuse, not from a dead counter.
    let cold = core.run(&trace);
    assert!(cold.mem.tlb_misses > 0, "cold first pass misses the TLB");
    assert_conserved("SAXPY/UVE cold", &cold);
}
