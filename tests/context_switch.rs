//! Stream control and context switching through the full emulator: the
//! paper's `ss.suspend`/`ss.resume`/`ss.stop` semantics and the
//! save/restore path of Sec. IV-A.

use uve::core::{EmuConfig, Emulator, StreamUnit};
use uve::isa::{assemble, VReg};
use uve::mem::Memory;
use uve::stream::SavedWalker;
use uve_isa::Dir;

#[test]
fn suspend_resume_through_programs() {
    // Sum a stream in two halves with an explicit suspend/resume between.
    let prog = assemble(
        "suspend",
        "
    li x10, 32
    li x11, 0x1000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    so.v.dup.w.fp u5, f31
    ; first half: 16 elements = one full chunk
    so.a.hadd.w.fp u6, u0, p0
    so.a.add.w.fp u5, u5, u6, p0
    ss.suspend u0
    ; unrelated work while the stream is frozen
    addi x20, x0, 7
    ss.resume u0
loop:
    so.a.hadd.w.fp u6, u0, p0
    so.a.add.w.fp u5, u5, u6, p0
    so.b.nend u0, loop
    so.v.extr.f.w f1, u5[0]
    li x21, 0x2000
    fst.w f1, 0(x21)
    halt
",
    )
    .unwrap();
    let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
    let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
    emu.mem.write_f32_slice(0x1000, &data);
    emu.run(&prog).unwrap();
    assert_eq!(emu.mem.read_f32(0x2000), data.iter().sum::<f32>());
}

#[test]
fn stop_frees_the_register_for_vector_use() {
    let prog = assemble(
        "stop",
        "
    li x10, 48
    li x11, 0x1000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    so.v.mv u5, u0          ; consume one chunk (stream still active)
    ss.stop u0              ; terminate early
    so.v.dup.w.fp u0, f10   ; u0 is a plain register again
    so.a.add.w.fp u6, u5, u0, p0
    so.v.extr.f.w f1, u6[0]
    li x21, 0x2000
    fst.w f1, 0(x21)
    halt
",
    )
    .unwrap();
    let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
    emu.set_f(uve::isa::FReg::FA0, 10.0);
    emu.mem.write_f32_slice(0x1000, &[5.0; 48]);
    emu.run(&prog).unwrap();
    assert_eq!(emu.mem.read_f32(0x2000), 15.0);
}

#[test]
fn context_state_sizes_respect_paper_bounds() {
    // Build streams of increasing complexity and check the saved state
    // stays in the paper's 32 B – 400 B envelope.
    use uve::core::Trace;
    use uve::stream::ElemWidth;
    let mem = Memory::new();
    let mut unit = StreamUnit::new();
    let mut trace = Trace::new();
    unit.start(
        VReg::new(0),
        Dir::Load,
        ElemWidth::Word,
        0,
        64,
        1,
        true,
        &mut trace,
    )
    .unwrap();
    let ctx = unit.save_context();
    assert_eq!(ctx.len(), 1);
    let size = ctx[0].1.size_bytes();
    assert!((32..=400).contains(&size), "{size}");
    unit.restore_context(&ctx, &mem);
}

#[test]
fn save_restore_under_indirect_modifiers() {
    // A context switch can land between any two elements of an indirect
    // gather; the restored walker must resume the origin stream at the
    // right cursor, not replay it. Cuts at every position of a 13-element
    // gather (prime length, so no alignment masks the bug).
    use uve::stream::{ElemWidth, IndirectBehaviour, Param, Pattern, SliceMemory, Walker};
    let indices: Vec<i64> = vec![3, 0, 7, 7, 1, 12, 4, 9, 2, 11, 5, 10, 6];
    let mem = SliceMemory::new(indices.clone());
    let origin = Pattern::linear(0, ElemWidth::Word, indices.len() as u64).unwrap();
    let p = Pattern::builder(0x4000, ElemWidth::Word)
        .dim(0, 1, 0)
        .indirect_outer(
            Param::Offset,
            IndirectBehaviour::SetAdd,
            origin,
            indices.len() as u64,
        )
        .build()
        .unwrap();
    let full: Vec<u64> = Walker::new(&p).iter(&mem).map(|e| e.addr).collect();
    assert_eq!(full.len(), indices.len());
    for cut in 0..=full.len() {
        let mut w = Walker::new(&p);
        for _ in 0..cut {
            w.next_elem(&mem);
        }
        let saved = SavedWalker::capture(&w);
        let mut w2 = Walker::new(&p);
        saved.restore(&mut w2, &mem);
        let suffix: Vec<u64> = w2.iter(&mem).map(|e| e.addr).collect();
        assert_eq!(suffix, full[cut..].to_vec(), "cut {cut}");
    }
}

#[test]
fn save_restore_at_non_vlen_multiple_cuts() {
    // Stream lengths and suspension points that are not multiples of the
    // vector length: a 16-lane machine suspending mid-chunk. The restored
    // walker must also re-chunk the tail correctly.
    use uve::stream::{ElemWidth, NoMemory, Pattern, VectorWalker, Walker};
    const VL: usize = 16; // 512-bit vectors of 32-bit words
    let p = Pattern::builder(0, ElemWidth::Word)
        .dim(0, 10, 1) // rows of 10: every chunk boundary is off-VLEN
        .dim(0, 5, 10)
        .build()
        .unwrap();
    let full: Vec<u64> = Walker::new(&p).iter(&NoMemory).map(|e| e.addr).collect();
    assert_eq!(full.len(), 50);
    for cut in [1usize, 9, 10, 19, 25, 33, 49] {
        assert_ne!(cut % VL, 0);
        let mut w = Walker::new(&p);
        for _ in 0..cut {
            w.next_elem(&NoMemory);
        }
        let saved = SavedWalker::capture(&w);
        let mut w2 = Walker::new(&p);
        saved.restore(&mut w2, &NoMemory);
        let suffix: Vec<u64> = w2.iter(&NoMemory).map(|e| e.addr).collect();
        assert_eq!(suffix, full[cut..].to_vec(), "cut {cut}");
        // The resumed stream re-chunks: valid counts stay in 1..=VL and
        // concatenate to exactly the remaining elements.
        let mut vw = VectorWalker::new(&p, VL);
        saved.restore(vw.walker_mut(), &NoMemory);
        let mut rechunked = Vec::new();
        while let Some(c) = vw.next_chunk(&NoMemory) {
            assert!(c.valid >= 1 && c.valid <= VL, "cut {cut}");
            rechunked.extend_from_slice(&c.addrs);
        }
        assert_eq!(rechunked, full[cut..].to_vec(), "cut {cut}");
    }
}

#[test]
fn scheduler_preemption_in_indirect_modifier_region_is_invisible() {
    // PR 5 (multicore): the preemptive round-robin scheduler slices
    // programs at instruction granularity, so with a small quantum the
    // context switch lands mid-chunk inside the indirect-modifier region
    // of the MAMR gather kernel. Every switch runs the full protocol —
    // save the stream walkers, discard prefetched FIFO data, restore from
    // the saved state — and the final registers and memory must be
    // bit-identical to uninterrupted solo runs.
    use uve::kernels::{mamr::Mamr, memcpy::Memcpy, Benchmark, Flavor};
    use uve::smp::{run_round_robin, Job};

    let benches: [&dyn Benchmark; 2] = [&Mamr::indirect(24), &Memcpy::new(300)];
    let flavor = Flavor::Uve;
    let mut jobs = Vec::new();
    let mut solo = Vec::new();
    for bench in benches {
        let run = uve::kernels::run(bench, flavor).unwrap();
        solo.push((run.emulator.arch_digest(), run.emulator.mem.content_hash()));
        let cfg = EmuConfig {
            vlen_bytes: flavor.vlen_bytes(),
            ..EmuConfig::default()
        };
        let mut emu = Emulator::new(cfg, Memory::new());
        bench.setup(&mut emu);
        jobs.push(Job {
            name: bench.name().to_string(),
            program: bench.program(flavor),
            emu,
        });
    }
    // Quantum 3: cuts land inside the gather's indirect chunk production,
    // not only at chunk boundaries.
    let outcomes = run_round_robin(jobs, 2, 3).unwrap();
    for (out, (digest, hash)) in outcomes.iter().zip(&solo) {
        assert!(
            out.preemptions >= 2,
            "{}: {} preemptions",
            out.name,
            out.preemptions
        );
        assert_eq!(
            out.arch_digest, *digest,
            "{}: register state differs",
            out.name
        );
        assert_eq!(out.mem_hash, *hash, "{}: memory image differs", out.name);
    }
}

#[test]
fn resume_budget_cuts_at_non_vlen_multiples_are_invisible() {
    // PR 5 (multicore): drive `Emulator::resume` directly with prime
    // instruction budgets over a kernel whose streams re-chunk off any
    // VLEN multiple (Jacobi-1d at 53 points: 51 interior elements chunk as
    // 16+16+16+3), doing a full stream-context save/restore round trip at
    // every pause. The interrupted runs must converge to the solo state.
    use uve::core::RunCursor;
    use uve::kernels::{jacobi::Jacobi1d, Benchmark, Flavor};

    let bench = Jacobi1d::new(53, 2);
    let flavor = Flavor::Uve;
    let solo = uve::kernels::run(&bench, flavor).unwrap();
    let want = (
        solo.emulator.arch_digest(),
        solo.emulator.mem.content_hash(),
    );

    for budget in [1u64, 5, 7, 13] {
        let cfg = EmuConfig {
            vlen_bytes: flavor.vlen_bytes(),
            ..EmuConfig::default()
        };
        let mut emu = Emulator::new(cfg, Memory::new());
        bench.setup(&mut emu);
        let program = bench.program(flavor);
        let mut cursor = RunCursor::new();
        let mut pauses = 0u64;
        loop {
            let halted = emu.resume(&program, &mut cursor, Some(budget)).unwrap();
            if halted {
                break;
            }
            pauses += 1;
            let saved = emu.save_stream_context();
            emu.restore_stream_context(&saved);
        }
        assert!(pauses >= 2, "budget {budget}: only {pauses} pauses");
        assert_eq!(
            emu.arch_digest(),
            want.0,
            "budget {budget}: register state differs"
        );
        assert_eq!(
            emu.mem.content_hash(),
            want.1,
            "budget {budget}: memory image differs"
        );
    }
}

#[test]
fn saved_walker_is_cloneable_and_comparable() {
    use uve::stream::{ElemWidth, NoMemory, Pattern, Walker};
    let p = Pattern::linear(0, ElemWidth::Word, 64).unwrap();
    let mut w = Walker::new(&p);
    w.next_elem(&NoMemory);
    let s1 = SavedWalker::capture(&w);
    let s2 = s1.clone();
    assert_eq!(s1, s2);
    w.next_elem(&NoMemory);
    let s3 = SavedWalker::capture(&w);
    assert_ne!(s1, s3);
}

#[test]
fn stream_fault_inside_indirect_gather_recovers_bit_identically() {
    // PR 4 (fault model): a stream element can fault at any position of an
    // indirect gather. The fault must be precise — walker rolled back, no
    // chunk emitted — and the post-handler resume must reproduce the
    // fault-free chunk sequence bit for bit. Faults are forced at every
    // element position of a 13-element gather (prime length: cuts land at
    // non-VLEN-multiple positions inside the indirect-modifier region).
    use uve::core::{StreamError, Trace};
    use uve::isa::VReg;
    use uve::stream::{ElemWidth, IndirectBehaviour, Param};

    let indices: [u32; 13] = [3, 0, 7, 7, 1, 12, 4, 9, 2, 11, 5, 10, 6];
    let mut mem = Memory::new();
    for (i, &idx) in indices.iter().enumerate() {
        mem.write_u32(0x4000 + 4 * i as u64, idx);
    }
    for i in 0..16u64 {
        mem.write_f32(0x8000 + 4 * i, (100 + i) as f32);
    }

    let build = |mem: &Memory, trace: &mut Trace| {
        let mut unit = StreamUnit::new();
        unit.start(
            VReg::new(1),
            Dir::Load,
            ElemWidth::Word,
            0x4000,
            indices.len() as u64,
            1,
            true,
            trace,
        )
        .unwrap();
        unit.start(
            VReg::new(0),
            Dir::Load,
            ElemWidth::Word,
            0x8000,
            1,
            0,
            false,
            trace,
        )
        .unwrap();
        unit.append_indirect_mod(
            VReg::new(0),
            Param::Offset,
            IndirectBehaviour::SetAdd,
            VReg::new(1),
            true,
            mem,
            trace,
        )
        .unwrap();
        unit
    };

    // Fault-free reference chunk sequence.
    let mut trace = Trace::new();
    let mut unit = build(&mem, &mut trace);
    let mut want = Vec::new();
    loop {
        want.push(unit.consume(VReg::new(0), &mem, 64, &mut trace).unwrap());
        if unit.get(VReg::new(0)).unwrap().at_end() {
            break;
        }
    }

    for cut in 0..indices.len() {
        let mut trace = Trace::new();
        let mut unit = build(&mem, &mut trace);
        let mut got = Vec::new();
        // The probe faults exactly once, on the `cut`-th element probe.
        let mut probes = 0usize;
        let mut faulted = false;
        loop {
            let mut probe = |_page: u64| {
                let fire = !faulted && probes == cut;
                probes += 1;
                fire
            };
            match unit.consume_with(VReg::new(0), &mem, 64, &mut trace, Some(&mut probe)) {
                Ok(c) => got.push(c),
                Err(StreamError::PageFault { u: 0, .. }) => {
                    assert!(!faulted, "cut {cut}: a single fault may fire once");
                    faulted = true;
                    // Precise: nothing was emitted for the faulting chunk.
                    let emitted: usize = trace.streams[1]
                        .chunks
                        .iter()
                        .map(|c| c.valid as usize)
                        .sum();
                    assert_eq!(
                        emitted,
                        got.iter().map(|c| c.value.valid_count()).sum::<usize>()
                    );
                }
                Err(e) => panic!("cut {cut}: {e}"),
            }
            if unit.get(VReg::new(0)).unwrap().at_end() {
                break;
            }
        }
        assert!(faulted, "cut {cut} must trap");
        assert_eq!(got.len(), want.len(), "cut {cut}: chunk count diverged");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.value, w.value, "cut {cut}: recovered run diverged");
        }
    }
}

#[test]
fn save_restore_at_mid_packed_chunk_cuts() {
    // Packed indirect chunking: chunks of an indirectly modified stream
    // span dimension-0 boundaries, so a context switch can land inside a
    // packed chunk that no strict (unpacked) walk would ever have open.
    // Cut a 3-row x 40-element gather inside, at, and across packed-chunk
    // and row boundaries; the restored walker must re-chunk the tail
    // packed and bit-identical to the uncut walk.
    use uve::stream::{
        ElemWidth, IndirectBehaviour, IndirectPacking, Param, Pattern, SliceMemory, VectorWalker,
        Walker,
    };
    const VL: usize = 16;
    let total = 120u64; // 3 rows of 40 gathered elements
    let indices: Vec<i64> = (0..total).map(|i| ((i * 7) % total) as i64).collect();
    let mem = SliceMemory::new(indices);
    let origin = Pattern::linear(0, ElemWidth::Word, total).unwrap();
    let p = Pattern::builder(0x1_0000, ElemWidth::Word)
        .dim(0, 1, 0)
        .dim(0, 40, 0)
        .indirect_mod(Param::Offset, IndirectBehaviour::SetAdd, origin)
        .dim(0, 3, 0)
        .build()
        .unwrap();
    let full: Vec<u64> = Walker::new(&p).iter(&mem).map(|e| e.addr).collect();
    assert_eq!(full.len(), total as usize);
    // Rows of 40 pack as 16+16+8: cuts 5/17/23/53/113 land mid-packed-
    // chunk, 16 on a packed-chunk boundary mid-row, 40 on a row boundary.
    for cut in [5usize, 16, 17, 23, 39, 40, 53, 113] {
        let mut w = Walker::new(&p);
        for _ in 0..cut {
            w.next_elem(&mem);
        }
        let saved = SavedWalker::capture(&w);
        let mut vw = VectorWalker::with_packing(&p, VL, IndirectPacking::Packed);
        assert!(vw.packs());
        saved.restore(vw.walker_mut(), &mem);
        let mut rechunked = Vec::new();
        let mut widths = Vec::new();
        while let Some(c) = vw.next_chunk(&mem) {
            widths.push(c.valid);
            rechunked.extend_from_slice(&c.addrs);
        }
        assert_eq!(rechunked, full[cut..].to_vec(), "cut {cut}");
        // The resumed walk still packs: the first chunk fills to VL unless
        // the current row runs out first.
        let to_row_end = 40 - cut % 40;
        assert_eq!(widths[0], to_row_end.min(VL), "cut {cut}");
    }
}

#[test]
fn stream_fault_recovery_is_packing_invariant() {
    // The precise-fault protocol must not depend on the chunking mode:
    // fault at every element position of an indirect gather under both
    // packing modes and compare the recovered element sequences. Packed
    // mode lands every fault mid-packed-chunk (the 13 elements form one
    // packed chunk); unpacked mode replays the same walk one element per
    // chunk. Both must recover the identical value sequence.
    use uve::core::{IndirectPacking, StreamError, Trace};
    use uve::stream::{ElemWidth, IndirectBehaviour, Param};

    let indices: [u32; 13] = [3, 0, 7, 7, 1, 12, 4, 9, 2, 11, 5, 10, 6];
    let mut mem = Memory::new();
    for (i, &idx) in indices.iter().enumerate() {
        mem.write_u32(0x4000 + 4 * i as u64, idx);
    }
    for i in 0..16u64 {
        mem.write_f32(0x8000 + 4 * i, (100 + i) as f32);
    }

    let build = |packing: IndirectPacking, mem: &Memory, trace: &mut Trace| {
        let mut unit = StreamUnit::with_config(Default::default(), packing);
        unit.start(
            VReg::new(1),
            Dir::Load,
            ElemWidth::Word,
            0x4000,
            indices.len() as u64,
            1,
            true,
            trace,
        )
        .unwrap();
        unit.start(
            VReg::new(0),
            Dir::Load,
            ElemWidth::Word,
            0x8000,
            1,
            0,
            false,
            trace,
        )
        .unwrap();
        unit.append_indirect_mod(
            VReg::new(0),
            Param::Offset,
            IndirectBehaviour::SetAdd,
            VReg::new(1),
            true,
            mem,
            trace,
        )
        .unwrap();
        unit
    };

    // Runs the gather to completion, optionally forcing one precise fault
    // on the `fault_at`-th element probe; returns the flattened values and
    // the chunk count.
    let run = |packing: IndirectPacking, fault_at: Option<usize>| -> (Vec<f64>, usize) {
        let mut trace = Trace::new();
        let mut unit = build(packing, &mem, &mut trace);
        let mut vals = Vec::new();
        let mut chunks = 0usize;
        let mut probes = 0usize;
        let mut faulted = false;
        loop {
            let mut probe = |_page: u64| {
                let fire = !faulted && Some(probes) == fault_at;
                probes += 1;
                fire
            };
            match unit.consume_with(VReg::new(0), &mem, 64, &mut trace, Some(&mut probe)) {
                Ok(c) => {
                    chunks += 1;
                    for l in 0..c.value.valid_count() {
                        vals.push(c.value.float(l));
                    }
                }
                Err(StreamError::PageFault { u: 0, .. }) => {
                    assert!(!faulted, "{packing:?}: a single fault may fire once");
                    faulted = true;
                }
                Err(e) => panic!("{packing:?} fault_at {fault_at:?}: {e}"),
            }
            if unit.get(VReg::new(0)).unwrap().at_end() {
                break;
            }
        }
        assert_eq!(faulted, fault_at.is_some(), "{packing:?} {fault_at:?}");
        (vals, chunks)
    };

    let (want, packed_chunks) = run(IndirectPacking::Packed, None);
    let (unpacked, unpacked_chunks) = run(IndirectPacking::Unpacked, None);
    assert_eq!(want, unpacked, "modes must gather identical values");
    assert_eq!(packed_chunks, 1, "13 elements pack into one chunk");
    assert_eq!(unpacked_chunks, 13, "strict mode closes at every dim-0 end");
    for packing in [IndirectPacking::Packed, IndirectPacking::Unpacked] {
        for cut in 0..indices.len() {
            let (vals, _) = run(packing, Some(cut));
            assert_eq!(vals, want, "{packing:?} cut {cut}");
        }
    }
}

#[test]
fn saved_walker_restores_across_fault_at_non_vlen_multiple_cuts() {
    // PR 4 (fault model): after a precise stream fault, the OS may context
    // switch before re-executing. Capture the stream context at the fault
    // boundary, restore it into a fresh unit, and finish there: the
    // concatenation of pre-fault and post-restore chunks must equal the
    // fault-free run. Rows of 10 words make every chunk boundary (and
    // therefore every fault) land off any VLEN multiple.
    use uve::core::{StreamError, Trace};
    use uve::isa::VReg;
    use uve::stream::ElemWidth;

    let mut mem = Memory::new();
    let data: Vec<f32> = (0..50).map(|i| i as f32).collect();
    mem.write_f32_slice(0x1000, &data);

    let build = |trace: &mut Trace| {
        let mut unit = StreamUnit::new();
        unit.start(
            VReg::new(0),
            Dir::Load,
            ElemWidth::Word,
            0x1000,
            10,
            1,
            false,
            trace,
        )
        .unwrap();
        unit.append_dim(VReg::new(0), 0, 5, 10, true, trace)
            .unwrap();
        unit
    };

    let collect = |unit: &mut StreamUnit, trace: &mut Trace| {
        let mut vals = Vec::new();
        loop {
            let c = unit.consume(VReg::new(0), &mem, 64, trace).unwrap();
            assert!(c.value.valid_count() <= 10, "rows re-chunk at 10");
            vals.push(c.value);
            if unit.get(VReg::new(0)).unwrap().at_end() {
                break;
            }
        }
        vals
    };
    let mut trace = Trace::new();
    let want = collect(&mut build(&mut trace), &mut trace);

    for chunks_before_fault in [0usize, 1, 3] {
        let mut trace = Trace::new();
        let mut unit = build(&mut trace);
        let mut got = Vec::new();
        for _ in 0..chunks_before_fault {
            got.push(
                unit.consume(VReg::new(0), &mem, 64, &mut trace)
                    .unwrap()
                    .value,
            );
        }
        // Fault mid-chunk: the probe fires on the 7th element of the row.
        let mut probes = 0usize;
        let mut probe = |_page: u64| {
            probes += 1;
            probes == 7
        };
        let err = unit
            .consume_with(VReg::new(0), &mem, 64, &mut trace, Some(&mut probe))
            .unwrap_err();
        assert!(matches!(err, StreamError::PageFault { u: 0, .. }), "{err}");

        // Context switch at the fault boundary: capture, restore into a
        // fresh unit (same configuration), resume there.
        let ctx = unit.save_context();
        let mut trace2 = Trace::new();
        let mut resumed = build(&mut trace2);
        resumed.restore_context(&ctx, &mem);
        got.extend(collect(&mut resumed, &mut trace2));
        assert_eq!(got, want, "after {chunks_before_fault} clean chunk(s)");
    }
}

#[test]
fn preemption_in_sparse_gather_kernels_is_invisible() {
    // PR 10: SpMV walks two dual-indirect-modifier gather streams in
    // lockstep (per-row indirect *size* modifiers), and Histogram pairs a
    // gather with an indirect scatter store off a shared origin. A small
    // scheduler quantum lands context switches mid-chunk inside those
    // regions; save/restore must stay architecturally invisible.
    use uve::kernels::{sparse, Benchmark, Flavor};
    use uve::smp::{run_round_robin, Job};

    let spmv = sparse::Spmv::new(13, 33, 20); // rows span chunk boundaries
    let hist = sparse::Histogram::new(93, 16);
    let benches: [&dyn Benchmark; 2] = [&spmv, &hist];
    let flavor = Flavor::Uve;
    let mut jobs = Vec::new();
    let mut solo = Vec::new();
    for bench in benches {
        let run = uve::kernels::run(bench, flavor).unwrap();
        solo.push((run.emulator.arch_digest(), run.emulator.mem.content_hash()));
        let cfg = EmuConfig {
            vlen_bytes: flavor.vlen_bytes(),
            ..EmuConfig::default()
        };
        let mut emu = Emulator::new(cfg, Memory::new());
        bench.setup(&mut emu);
        jobs.push(Job {
            name: bench.name().to_string(),
            program: bench.program(flavor),
            emu,
        });
    }
    let outcomes = run_round_robin(jobs, 2, 3).unwrap();
    for (out, (digest, hash)) in outcomes.iter().zip(&solo) {
        assert!(
            out.preemptions >= 2,
            "{}: {} preemptions",
            out.name,
            out.preemptions
        );
        assert_eq!(
            out.arch_digest, *digest,
            "{}: register state differs",
            out.name
        );
        assert_eq!(out.mem_hash, *hash, "{}: memory image differs", out.name);
    }
}

#[test]
fn budgeted_resume_cuts_inside_spmv_rows_are_invisible() {
    // Prime instruction budgets over SpMV with maxlen > VL: rows re-chunk
    // off any VLEN multiple and the resume cursor lands inside the
    // dual-gather rows. Every pause does a full stream-context round trip.
    use uve::core::RunCursor;
    use uve::kernels::{sparse::Spmv, Benchmark, Flavor};

    let bench = Spmv::new(13, 33, 20);
    let flavor = Flavor::Uve;
    let solo = uve::kernels::run(&bench, flavor).unwrap();
    let want = (
        solo.emulator.arch_digest(),
        solo.emulator.mem.content_hash(),
    );

    for budget in [1u64, 7, 13] {
        let cfg = EmuConfig {
            vlen_bytes: flavor.vlen_bytes(),
            ..EmuConfig::default()
        };
        let mut emu = Emulator::new(cfg, Memory::new());
        bench.setup(&mut emu);
        let program = bench.program(flavor);
        let mut cursor = RunCursor::new();
        let mut pauses = 0u64;
        loop {
            let halted = emu.resume(&program, &mut cursor, Some(budget)).unwrap();
            if halted {
                break;
            }
            pauses += 1;
            let saved = emu.save_stream_context();
            emu.restore_stream_context(&saved);
        }
        assert!(pauses >= 2, "budget {budget}: only {pauses} pauses");
        assert_eq!(
            emu.arch_digest(),
            want.0,
            "budget {budget}: register state differs"
        );
        assert_eq!(
            emu.mem.content_hash(),
            want.1,
            "budget {budget}: memory image differs"
        );
    }
}
