//! Stream control and context switching through the full emulator: the
//! paper's `ss.suspend`/`ss.resume`/`ss.stop` semantics and the
//! save/restore path of Sec. IV-A.

use uve::core::{EmuConfig, Emulator, StreamUnit};
use uve::isa::{assemble, VReg};
use uve::mem::Memory;
use uve::stream::SavedWalker;
use uve_isa::Dir;

#[test]
fn suspend_resume_through_programs() {
    // Sum a stream in two halves with an explicit suspend/resume between.
    let prog = assemble(
        "suspend",
        "
    li x10, 32
    li x11, 0x1000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    so.v.dup.w.fp u5, f31
    ; first half: 16 elements = one full chunk
    so.a.hadd.w.fp u6, u0, p0
    so.a.add.w.fp u5, u5, u6, p0
    ss.suspend u0
    ; unrelated work while the stream is frozen
    addi x20, x0, 7
    ss.resume u0
loop:
    so.a.hadd.w.fp u6, u0, p0
    so.a.add.w.fp u5, u5, u6, p0
    so.b.nend u0, loop
    so.v.extr.f.w f1, u5[0]
    li x21, 0x2000
    fst.w f1, 0(x21)
    halt
",
    )
    .unwrap();
    let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
    let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
    emu.mem.write_f32_slice(0x1000, &data);
    emu.run(&prog).unwrap();
    assert_eq!(emu.mem.read_f32(0x2000), data.iter().sum::<f32>());
}

#[test]
fn stop_frees_the_register_for_vector_use() {
    let prog = assemble(
        "stop",
        "
    li x10, 48
    li x11, 0x1000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    so.v.mv u5, u0          ; consume one chunk (stream still active)
    ss.stop u0              ; terminate early
    so.v.dup.w.fp u0, f10   ; u0 is a plain register again
    so.a.add.w.fp u6, u5, u0, p0
    so.v.extr.f.w f1, u6[0]
    li x21, 0x2000
    fst.w f1, 0(x21)
    halt
",
    )
    .unwrap();
    let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
    emu.set_f(uve::isa::FReg::FA0, 10.0);
    emu.mem.write_f32_slice(0x1000, &[5.0; 48]);
    emu.run(&prog).unwrap();
    assert_eq!(emu.mem.read_f32(0x2000), 15.0);
}

#[test]
fn context_state_sizes_respect_paper_bounds() {
    // Build streams of increasing complexity and check the saved state
    // stays in the paper's 32 B – 400 B envelope.
    use uve::core::Trace;
    use uve::stream::ElemWidth;
    let mem = Memory::new();
    let mut unit = StreamUnit::new();
    let mut trace = Trace::new();
    unit.start(
        VReg::new(0),
        Dir::Load,
        ElemWidth::Word,
        0,
        64,
        1,
        true,
        &mut trace,
    )
    .unwrap();
    let ctx = unit.save_context();
    assert_eq!(ctx.len(), 1);
    let size = ctx[0].1.size_bytes();
    assert!((32..=400).contains(&size), "{size}");
    unit.restore_context(&ctx, &mem);
}

#[test]
fn saved_walker_is_cloneable_and_comparable() {
    use uve::stream::{ElemWidth, NoMemory, Pattern, Walker};
    let p = Pattern::linear(0, ElemWidth::Word, 64).unwrap();
    let mut w = Walker::new(&p);
    w.next_elem(&NoMemory);
    let s1 = SavedWalker::capture(&w);
    let s2 = s1.clone();
    assert_eq!(s1, s2);
    w.next_elem(&NoMemory);
    let s3 = SavedWalker::capture(&w);
    assert_ne!(s1, s3);
}
