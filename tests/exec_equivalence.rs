//! Bit-identity of the basic-block translation cache against the
//! decode-dispatch interpreter, over the full 19-kernel evaluation suite.
//!
//! The translated mode ([`ExecMode::Translated`]) is only allowed to be
//! faster — never different: full dynamic traces, the architectural
//! digest, the memory image, budgeted-resume slicing (the `uve-smp`
//! preemption primitive, cut at *every* instruction boundary, which is a
//! superset of every block boundary) and precise stream-fault rollback
//! must all match the interpreter exactly.

use uve::bench::{default_jobs, run_indexed, RunMode};
use uve::core::{EmuConfig, Emulator, ExecMode, RunCursor, StreamFaultPlan, Trace};
use uve::kernels::{Benchmark, Flavor};
use uve::mem::Memory;

/// Small instances of the full suite (same sizes as
/// `tests/cycle_accounting.rs` — bit-identity is structural, so small
/// sizes prove it while keeping tier-1 fast).
fn small_suite() -> Vec<Box<dyn Benchmark>> {
    use uve::kernels::*;
    vec![
        Box::new(memcpy::Memcpy::new(300)),
        Box::new(stream::Stream::new(200)),
        Box::new(saxpy::Saxpy::new(300)),
        Box::new(gemm::Gemm::new(6, 16, 6)),
        Box::new(threemm::ThreeMm::new(16)),
        Box::new(mvt::Mvt::new(24)),
        Box::new(gemver::Gemver::new(24)),
        Box::new(trisolv::Trisolv::new(24)),
        Box::new(jacobi::Jacobi1d::new(80, 2)),
        Box::new(jacobi::Jacobi2d::new(12, 2)),
        Box::new(irsmk::Irsmk::new(600)),
        Box::new(haccmk::Haccmk::new(24)),
        Box::new(knn::Knn::new(32, 8)),
        Box::new(covariance::Covariance::new(16, 12)),
        Box::new(mamr::Mamr::full(24)),
        Box::new(mamr::Mamr::diag(24)),
        Box::new(mamr::Mamr::indirect(16)),
        Box::new(seidel::Seidel2d::new(10, 2)),
        Box::new(floyd::FloydWarshall::new(12)),
    ]
}

fn emulator(vlen_bytes: usize, exec: ExecMode, traced: bool) -> Emulator {
    let cfg = EmuConfig {
        vlen_bytes,
        record_trace: traced,
        exec,
        ..EmuConfig::default()
    };
    Emulator::new(cfg, Memory::new())
}

/// Runs `bench`/`flavor` to completion and returns `(trace, digest, mem)`.
fn run_full(
    bench: &dyn Benchmark,
    flavor: Flavor,
    vlen_bytes: usize,
    exec: ExecMode,
) -> (Trace, u64, u64) {
    let mut emu = emulator(vlen_bytes, exec, true);
    bench.setup(&mut emu);
    let result = emu
        .run(&bench.program(flavor))
        .unwrap_or_else(|e| panic!("{}/{flavor}@vl{vlen_bytes}/{exec:?}: {e}", bench.name()));
    bench
        .check(&emu)
        .unwrap_or_else(|e| panic!("{}/{flavor}@vl{vlen_bytes}/{exec:?}: {e}", bench.name()));
    (result.trace, emu.arch_digest(), emu.mem.content_hash())
}

fn assert_traces_equal(tag: &str, a: &Trace, b: &Trace) {
    if let Some(i) = a.ops.iter().zip(&b.ops).position(|(x, y)| x != y) {
        panic!(
            "{tag}: trace diverges at dynamic op {i}:\n  interpreter {:?}\n  translated  {:?}",
            a.ops[i], b.ops[i]
        );
    }
    assert_eq!(a.ops.len(), b.ops.len(), "{tag}: trace length");
    assert_eq!(a.streams, b.streams, "{tag}: stream side tables");
}

/// Every kernel × flavor × vector length: full traced runs in both modes
/// must be bit-identical — op for op, chunk for chunk.
#[test]
fn translated_is_bit_identical_across_suite_flavors_and_vlens() {
    let suite = small_suite();
    let mut points: Vec<(usize, Flavor, usize)> = Vec::new();
    for i in 0..suite.len() {
        for flavor in Flavor::all() {
            for vlen in [16, 32, 64] {
                points.push((i, flavor, vlen));
            }
        }
    }
    let mode = RunMode::Parallel(default_jobs());
    run_indexed(mode, points.len(), |k| {
        let (i, flavor, vlen) = points[k];
        let bench = suite[i].as_ref();
        let tag = format!("{}/{flavor}@vl{vlen}", bench.name());
        let (ti, di, mi) = run_full(bench, flavor, vlen, ExecMode::Interpret);
        let (tt, dt, mt) = run_full(bench, flavor, vlen, ExecMode::Translated);
        assert_traces_equal(&tag, &ti, &tt);
        assert_eq!(di, dt, "{tag}: arch_digest");
        assert_eq!(mi, mt, "{tag}: memory content hash");
    });
}

/// Resumes the translated run in budgeted slices — budget 1 cuts at every
/// instruction boundary, a strict superset of every block boundary — with
/// a stream-context save/restore round trip at each cut (the full
/// `uve-smp` context-switch path), and must land in the interpreter's
/// final state.
#[test]
fn translated_resume_cut_at_every_boundary_matches_interpreter() {
    let suite = small_suite();
    // A streaming kernel (cuts land inside stream chunks and indirect
    // regions), an indirect CSR-like kernel, and a branchy scalar one.
    let picks = [
        (2usize, Flavor::Uve),
        (16, Flavor::Uve),
        (18, Flavor::Scalar),
    ];
    for (i, flavor) in picks {
        let bench = suite[i].as_ref();
        for budget in [1u64, 7] {
            let (_, di, mi) = run_full(bench, flavor, 64, ExecMode::Interpret);
            let mut emu = emulator(64, ExecMode::Translated, true);
            bench.setup(&mut emu);
            let program = bench.program(flavor);
            let mut cursor = RunCursor::new();
            loop {
                match emu.resume(&program, &mut cursor, Some(budget)) {
                    Ok(true) => break,
                    Ok(false) => {
                        // Architecturally invisible context switch at the
                        // cut: the stream state must survive a save/restore
                        // round trip.
                        let saved = emu.save_stream_context();
                        emu.restore_stream_context(&saved);
                    }
                    Err(e) => panic!("{}/{flavor} budget {budget}: {e}", bench.name()),
                }
            }
            let tag = format!("{}/{flavor} budget {budget}", bench.name());
            bench.check(&emu).unwrap_or_else(|e| panic!("{tag}: {e}"));
            assert_eq!(emu.arch_digest(), di, "{tag}: arch_digest");
            assert_eq!(emu.mem.content_hash(), mi, "{tag}: memory content hash");
        }
    }
}

/// Stream faults under the same plan must trap, roll back and replay
/// identically in both modes — including when the translated run is
/// additionally cut into budgeted slices, so a fault can land mid-block
/// with part of the block already committed.
#[test]
fn translated_fault_rollback_matches_interpreter() {
    let suite = small_suite();
    // Streaming kernels only — the plan faults pages touched by streams.
    for i in [2usize, 14, 16] {
        let bench = suite[i].as_ref();
        let program = bench.program(Flavor::Uve);
        let plan = || Some(StreamFaultPlan::new(11, 1));

        let mut interp = emulator(64, ExecMode::Interpret, true);
        interp.set_fault_plan(plan());
        bench.setup(&mut interp);
        let ri = interp.run(&program).unwrap();

        let mut trans = emulator(64, ExecMode::Translated, true);
        trans.set_fault_plan(plan());
        bench.setup(&mut trans);
        let rt = trans.run(&program).unwrap();

        let tag = format!("{}/uve faulted", bench.name());
        assert_traces_equal(&tag, &ri.trace, &rt.trace);
        assert_eq!(interp.arch_digest(), trans.arch_digest(), "{tag}: digest");
        assert_eq!(
            interp.mem.content_hash(),
            trans.mem.content_hash(),
            "{tag}: memory"
        );
        let faults: u64 = ri
            .trace
            .ops
            .iter()
            .map(|o| u64::from(o.stream_faults))
            .sum();
        assert!(
            faults > 0,
            "{tag}: plan injected no faults — test is vacuous"
        );

        // Sliced + faulted: fuel gates and fault rollback interleaved.
        let mut sliced = emulator(64, ExecMode::Translated, true);
        sliced.set_fault_plan(plan());
        bench.setup(&mut sliced);
        let mut cursor = RunCursor::new();
        while !sliced.resume(&program, &mut cursor, Some(3)).unwrap() {}
        assert_eq!(
            sliced.arch_digest(),
            interp.arch_digest(),
            "{tag} sliced: digest"
        );
        assert_eq!(
            sliced.mem.content_hash(),
            interp.mem.content_hash(),
            "{tag} sliced: memory"
        );
    }
}

/// One emulator reused across different programs must re-key its
/// translation cache — block PCs of the old program mean nothing in the
/// new one.
#[test]
fn translation_cache_rekeys_across_programs() {
    let suite = small_suite();
    let mut emu = emulator(64, ExecMode::Translated, true);
    for i in [0usize, 2, 3] {
        let bench = suite[i].as_ref();
        bench.setup(&mut emu);
        emu.run(&bench.program(Flavor::Uve))
            .unwrap_or_else(|e| panic!("{} on shared emulator: {e}", bench.name()));
        bench
            .check(&emu)
            .unwrap_or_else(|e| panic!("{} on shared emulator: {e}", bench.name()));
    }
}
