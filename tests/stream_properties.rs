//! Property-based tests of the stream descriptor model: address-sequence
//! equivalence with reference loop nests, chunk partitioning invariants,
//! and save/restore correctness at arbitrary cut points.

// Compiled only with `--features proptest` (requires the registry-hosted
// `proptest` dev-dependency; see the workspace Cargo.toml note).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use uve::stream::{
    Behaviour, ElemWidth, NoMemory, Param, Pattern, SavedWalker, SliceMemory, VectorWalker, Walker,
};

fn walk(p: &Pattern) -> Vec<u64> {
    Walker::new(p).iter(&NoMemory).map(|e| e.addr).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A 2-D descriptor generates exactly the nested-loop address sequence.
    #[test]
    fn two_d_matches_nested_loops(
        n0 in 1u64..20,
        s0 in 1i64..5,
        n1 in 1u64..10,
        s1 in 1i64..64,
        base in (0u64..1024).prop_map(|b| b * 8),
    ) {
        let p = Pattern::builder(base, ElemWidth::Word)
            .dim(0, n0, s0)
            .dim(0, n1, s1)
            .build()
            .unwrap();
        let mut expect = Vec::new();
        for i in 0..n1 {
            for j in 0..n0 {
                expect.push(base + 4 * (i * s1 as u64 + j * s0 as u64));
            }
        }
        prop_assert_eq!(walk(&p), expect);
    }

    /// A 3-D descriptor generates the triple-nested sequence.
    #[test]
    fn three_d_matches_nested_loops(
        n0 in 1u64..8,
        n1 in 1u64..6,
        n2 in 1u64..5,
    ) {
        let p = Pattern::builder(0, ElemWidth::Double)
            .dim(0, n0, 1)
            .dim(0, n1, n0 as i64)
            .dim(0, n2, (n0 * n1) as i64)
            .build()
            .unwrap();
        let mut expect = Vec::new();
        for k in 0..n2 {
            for i in 0..n1 {
                for j in 0..n0 {
                    expect.push(8 * (k * n0 * n1 + i * n0 + j));
                }
            }
        }
        prop_assert_eq!(walk(&p), expect);
    }

    /// The triangular (size-modifier) pattern matches its loop nest.
    #[test]
    fn triangular_matches_loops(rows in 1u64..16, nc in 1u64..20) {
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 0, 1)
            .dim(0, rows, nc as i64)
            .static_mod(Param::Size, Behaviour::Add, 1, rows)
            .build()
            .unwrap();
        let mut expect = Vec::new();
        for i in 0..rows {
            for j in 0..=i {
                expect.push(4 * (i * nc + j));
            }
        }
        prop_assert_eq!(walk(&p), expect);
    }

    /// Vector chunking partitions the element sequence exactly, never
    /// crossing a dimension-0 boundary, for any vector length.
    #[test]
    fn chunking_partitions_the_walk(
        n0 in 1u64..40,
        n1 in 1u64..6,
        vl in 1usize..32,
    ) {
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, n0, 1)
            .dim(0, n1, n0 as i64)
            .build()
            .unwrap();
        let elements = walk(&p);
        let mut vw = VectorWalker::new(&p, vl);
        let mut collected = Vec::new();
        let mut boundary_positions = Vec::new();
        while let Some(c) = vw.next_chunk(&NoMemory) {
            prop_assert!(c.valid >= 1 && c.valid <= vl);
            prop_assert_eq!(c.valid, c.addrs.len());
            collected.extend_from_slice(&c.addrs);
            if c.ends.ends_dim(0) {
                boundary_positions.push(collected.len() as u64);
            }
        }
        prop_assert_eq!(collected, elements);
        // Dimension-0 boundaries land exactly at multiples of the row size.
        for b in boundary_positions {
            prop_assert_eq!(b % n0, 0);
        }
    }

    /// Capturing and restoring a walker at any cut yields the same suffix.
    #[test]
    fn save_restore_any_cut(
        n0 in 1u64..12,
        n1 in 1u64..6,
        cut in 0usize..80,
    ) {
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 0, 1)
            .dim(0, n1.max(1), n0 as i64 + 1)
            .static_mod(Param::Size, Behaviour::Add, n0 as i64, n1)
            .build()
            .unwrap();
        let full = walk(&p);
        let cut = cut.min(full.len());
        let mut w = Walker::new(&p);
        for _ in 0..cut {
            w.next_elem(&NoMemory);
        }
        let saved = SavedWalker::capture(&w);
        let mut w2 = Walker::new(&p);
        saved.restore(&mut w2, &NoMemory);
        let suffix: Vec<u64> = w2.iter(&NoMemory).map(|e| e.addr).collect();
        prop_assert_eq!(suffix, full[cut..].to_vec());
    }

    /// Indirect gathers visit exactly the indexed elements, in order.
    #[test]
    fn indirect_matches_index_table(indices in prop::collection::vec(0i64..64, 1..40)) {
        let mem = SliceMemory::new(indices.clone());
        let origin = Pattern::linear(0, ElemWidth::Word, indices.len() as u64).unwrap();
        let p = Pattern::builder(0x4000, ElemWidth::Word)
            .dim(0, 1, 0)
            .indirect_outer(
                uve::stream::Param::Offset,
                uve::stream::IndirectBehaviour::SetAdd,
                origin,
                indices.len() as u64,
            )
            .build()
            .unwrap();
        let got: Vec<u64> = Walker::new(&p).iter(&mem).map(|e| e.addr).collect();
        let expect: Vec<u64> = indices.iter().map(|&i| 0x4000 + 4 * i as u64).collect();
        prop_assert_eq!(got, expect);
    }

    /// `count` always agrees with a full walk.
    #[test]
    fn count_agrees_with_walk(n0 in 0u64..20, n1 in 1u64..8, grow in 0i64..3) {
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, n0, 1)
            .dim(0, n1, 32)
            .static_mod(Param::Size, Behaviour::Add, grow, n1)
            .build()
            .unwrap();
        prop_assert_eq!(p.count(&NoMemory), walk(&p).len() as u64);
    }
}
