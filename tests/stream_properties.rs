//! Randomized tests of the stream descriptor model: address-sequence
//! equivalence with reference loop nests, chunk partitioning invariants,
//! and save/restore correctness at arbitrary cut points.
//!
//! Parameters are drawn from the `uve-conform` offline RNG, so the suite
//! needs no registry dependency and every failure is reproducible from its
//! `(seed, case)` pair. The reference loop nests here are written inline
//! and independently of the conform crate's recursive oracle, giving a
//! third interpretation of the descriptor semantics.

use uve::stream::{
    Behaviour, ElemWidth, NoMemory, Param, Pattern, SavedWalker, SliceMemory, VectorWalker, Walker,
};
use uve_conform::FuzzRng;

const SEED: u64 = 0x0571_2ea0;
const CASES: u64 = 256;

fn walk(p: &Pattern) -> Vec<u64> {
    Walker::new(p).iter(&NoMemory).map(|e| e.addr).collect()
}

/// A 2-D descriptor generates exactly the nested-loop address sequence.
#[test]
fn two_d_matches_nested_loops() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "2d", case);
        let n0 = rng.range_u64(1, 19);
        let s0 = rng.range_i64(1, 4);
        let n1 = rng.range_u64(1, 9);
        let s1 = rng.range_i64(1, 63);
        let base = rng.below(1024) * 8;
        let p = Pattern::builder(base, ElemWidth::Word)
            .dim(0, n0, s0)
            .dim(0, n1, s1)
            .build()
            .unwrap();
        let mut expect = Vec::new();
        for i in 0..n1 {
            for j in 0..n0 {
                expect.push(base + 4 * (i * s1 as u64 + j * s0 as u64));
            }
        }
        assert_eq!(walk(&p), expect, "case {case}");
    }
}

/// A 3-D descriptor generates the triple-nested sequence.
#[test]
fn three_d_matches_nested_loops() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "3d", case);
        let n0 = rng.range_u64(1, 7);
        let n1 = rng.range_u64(1, 5);
        let n2 = rng.range_u64(1, 4);
        let p = Pattern::builder(0, ElemWidth::Double)
            .dim(0, n0, 1)
            .dim(0, n1, n0 as i64)
            .dim(0, n2, (n0 * n1) as i64)
            .build()
            .unwrap();
        let mut expect = Vec::new();
        for k in 0..n2 {
            for i in 0..n1 {
                for j in 0..n0 {
                    expect.push(8 * (k * n0 * n1 + i * n0 + j));
                }
            }
        }
        assert_eq!(walk(&p), expect, "case {case}");
    }
}

/// The triangular (size-modifier) pattern matches its loop nest.
#[test]
fn triangular_matches_loops() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "tri", case);
        let rows = rng.range_u64(1, 15);
        let nc = rng.range_u64(1, 19);
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 0, 1)
            .dim(0, rows, nc as i64)
            .static_mod(Param::Size, Behaviour::Add, 1, rows)
            .build()
            .unwrap();
        let mut expect = Vec::new();
        for i in 0..rows {
            for j in 0..=i {
                expect.push(4 * (i * nc + j));
            }
        }
        assert_eq!(walk(&p), expect, "case {case}");
    }
}

/// Vector chunking partitions the element sequence exactly, never
/// crossing a dimension-0 boundary, for any vector length.
#[test]
fn chunking_partitions_the_walk() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "chunk", case);
        let n0 = rng.range_u64(1, 39);
        let n1 = rng.range_u64(1, 5);
        let vl = rng.range_usize(1, 31);
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, n0, 1)
            .dim(0, n1, n0 as i64)
            .build()
            .unwrap();
        let elements = walk(&p);
        let mut vw = VectorWalker::new(&p, vl);
        let mut collected = Vec::new();
        let mut boundary_positions = Vec::new();
        while let Some(c) = vw.next_chunk(&NoMemory) {
            assert!(c.valid >= 1 && c.valid <= vl, "case {case}");
            assert_eq!(c.valid, c.addrs.len(), "case {case}");
            collected.extend_from_slice(&c.addrs);
            if c.ends.ends_dim(0) {
                boundary_positions.push(collected.len() as u64);
            }
        }
        assert_eq!(collected, elements, "case {case}");
        // Dimension-0 boundaries land exactly at multiples of the row size.
        for b in boundary_positions {
            assert_eq!(b % n0, 0, "case {case}");
        }
    }
}

/// Capturing and restoring a walker at any cut yields the same suffix.
#[test]
fn save_restore_any_cut() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "cut", case);
        let n0 = rng.range_u64(1, 11);
        let n1 = rng.range_u64(1, 5);
        let cut = rng.range_usize(0, 79);
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, 0, 1)
            .dim(0, n1.max(1), n0 as i64 + 1)
            .static_mod(Param::Size, Behaviour::Add, n0 as i64, n1)
            .build()
            .unwrap();
        let full = walk(&p);
        let cut = cut.min(full.len());
        let mut w = Walker::new(&p);
        for _ in 0..cut {
            w.next_elem(&NoMemory);
        }
        let saved = SavedWalker::capture(&w);
        let mut w2 = Walker::new(&p);
        saved.restore(&mut w2, &NoMemory);
        let suffix: Vec<u64> = w2.iter(&NoMemory).map(|e| e.addr).collect();
        assert_eq!(suffix, full[cut..].to_vec(), "case {case}");
    }
}

/// Indirect gathers visit exactly the indexed elements, in order.
#[test]
fn indirect_matches_index_table() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "ind", case);
        let len = rng.range_usize(1, 39);
        let indices: Vec<i64> = (0..len).map(|_| rng.range_i64(0, 63)).collect();
        let mem = SliceMemory::new(indices.clone());
        let origin = Pattern::linear(0, ElemWidth::Word, indices.len() as u64).unwrap();
        let p = Pattern::builder(0x4000, ElemWidth::Word)
            .dim(0, 1, 0)
            .indirect_outer(
                uve::stream::Param::Offset,
                uve::stream::IndirectBehaviour::SetAdd,
                origin,
                indices.len() as u64,
            )
            .build()
            .unwrap();
        let got: Vec<u64> = Walker::new(&p).iter(&mem).map(|e| e.addr).collect();
        let expect: Vec<u64> = indices.iter().map(|&i| 0x4000 + 4 * i as u64).collect();
        assert_eq!(got, expect, "case {case}");
    }
}

/// `count` always agrees with a full walk.
#[test]
fn count_agrees_with_walk() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "count", case);
        let n0 = rng.range_u64(0, 19);
        let n1 = rng.range_u64(1, 7);
        let grow = rng.range_i64(0, 2);
        let p = Pattern::builder(0, ElemWidth::Word)
            .dim(0, n0, 1)
            .dim(0, n1, 32)
            .static_mod(Param::Size, Behaviour::Add, grow, n1)
            .build()
            .unwrap();
        assert_eq!(p.count(&NoMemory), walk(&p).len() as u64, "case {case}");
    }
}
