//! The fault subsystem end to end: precise stream-fault recovery on every
//! evaluation kernel, cycle conservation under memory-hierarchy injection,
//! and the crash-proof sweep harness.
//!
//! These are the PR's acceptance properties: injected *recoverable* faults
//! must leave no trace in the final architectural state (Sec. II-C/V
//! precise stream-fault semantics), retry cycles must be accounted (the
//! `fault-replay` category absorbs them without breaking conservation),
//! and one poisoned job must not take a figure sweep down.

use uve::bench::{Job, Runner};
use uve::core::{EmuConfig, Emulator, StreamFaultPlan};
use uve::cpu::{CpuConfig, OoOCore};
use uve::kernels::{Benchmark, Flavor};
use uve::mem::{FaultConfig, Memory};

/// Small instances of all 19 evaluation kernels (fast enough for CI).
fn small_suite() -> Vec<Box<dyn Benchmark>> {
    use uve::kernels::*;
    vec![
        Box::new(memcpy::Memcpy::new(100)),
        Box::new(stream::Stream::new(80)),
        Box::new(saxpy::Saxpy::new(100)),
        Box::new(gemm::Gemm::new(5, 16, 6)),
        Box::new(threemm::ThreeMm::new(16)),
        Box::new(mvt::Mvt::new(20)),
        Box::new(gemver::Gemver::new(20)),
        Box::new(trisolv::Trisolv::new(20)),
        Box::new(jacobi::Jacobi1d::new(50, 2)),
        Box::new(jacobi::Jacobi2d::new(10, 2)),
        Box::new(irsmk::Irsmk::new(600)),
        Box::new(haccmk::Haccmk::new(20)),
        Box::new(knn::Knn::new(20, 8)),
        Box::new(covariance::Covariance::new(16, 12)),
        Box::new(mamr::Mamr::full(20)),
        Box::new(mamr::Mamr::diag(20)),
        Box::new(mamr::Mamr::indirect(12)),
        Box::new(seidel::Seidel2d::new(8, 2)),
        Box::new(floyd::FloydWarshall::new(10)),
    ]
}

/// Runs `bench`'s UVE program, optionally under a stream-fault plan, and
/// returns `(memory hash, architectural digest, committed, faults taken,
/// trace)`.
fn run_uve(
    bench: &dyn Benchmark,
    plan: Option<StreamFaultPlan>,
) -> (u64, u64, u64, u64, uve::core::Trace) {
    let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
    bench.setup(&mut emu);
    emu.set_fault_plan(plan);
    let program = bench.program(Flavor::Uve);
    let result = emu
        .run(&program)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
    bench
        .check(&emu)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
    (
        emu.mem.content_hash(),
        emu.arch_digest(),
        result.committed,
        emu.faults_taken(),
        result.trace,
    )
}

#[test]
fn recovered_faults_are_bit_identical_on_every_kernel() {
    let mut total_faults = 0u64;
    for bench in small_suite() {
        let (clean_mem, clean_arch, clean_committed, _, _) = run_uve(bench.as_ref(), None);
        // Rate 1: every first-touched page faults once.
        let plan = StreamFaultPlan::new(0x5eed, 1);
        let (mem, arch, committed, faults, _) = run_uve(bench.as_ref(), Some(plan));
        assert_eq!(
            mem,
            clean_mem,
            "{}: final memory diverged after {faults} recovered fault(s)",
            bench.name()
        );
        assert_eq!(
            arch,
            clean_arch,
            "{}: architectural state diverged after {faults} recovered fault(s)",
            bench.name()
        );
        assert_eq!(committed, clean_committed, "{}", bench.name());
        assert!(faults > 0, "{}: rate-1 plan must fault", bench.name());
        total_faults += faults;
    }
    assert!(total_faults >= 19, "every kernel contributed faults");
}

#[test]
fn conservation_holds_with_fault_replay_under_injection() {
    for bench in small_suite() {
        // The faulted trace carries stream-fault trap stamps; inject
        // memory-hierarchy faults on top of it in the timing model.
        let plan = StreamFaultPlan::new(0x5eed, 4);
        let (_, _, _, _, trace) = run_uve(bench.as_ref(), Some(plan));
        let mut cpu = CpuConfig::default();
        cpu.mem.fault = Some(FaultConfig::hostile(0x5eed));
        let stats = OoOCore::new(cpu).run(&trace);
        stats
            .account
            .check(stats.cycles)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
    }
}

#[test]
fn fault_replay_category_absorbs_retry_cycles() {
    // On a stream-heavy kernel the hostile injector must both slow the run
    // and show up in the fault-replay attribution — while the clean run
    // attributes nothing there.
    let bench = uve::kernels::saxpy::Saxpy::new(4096);
    let (_, _, _, _, trace) = run_uve(&bench, None);
    let clean = OoOCore::new(CpuConfig::default()).run(&trace);
    assert_eq!(clean.account.fault_replay, 0);

    let mut cpu = CpuConfig::default();
    cpu.mem.fault = Some(FaultConfig::hostile(7));
    let faulty = OoOCore::new(cpu).run(&trace);
    faulty.account.check(faulty.cycles).unwrap();
    assert_eq!(faulty.committed, clean.committed);
    assert!(
        faulty.engine.transient_retries + faulty.engine.poisoned_replays > 0,
        "hostile injection must trigger retries"
    );
    assert!(faulty.cycles > clean.cycles, "retries must cost cycles");
    assert!(
        faulty.account.fault_replay > 0,
        "retry cycles must be attributed to fault-replay"
    );
}

/// A benchmark whose oracle always fails, so the harness's emulation path
/// panics — the poisoned-sweep vehicle.
struct PoisonedBench(uve::kernels::saxpy::Saxpy);

impl Benchmark for PoisonedBench {
    fn name(&self) -> &'static str {
        "poisoned"
    }
    fn setup(&self, emu: &mut Emulator) {
        self.0.setup(emu);
    }
    fn program(&self, flavor: Flavor) -> uve::isa::Program {
        self.0.program(flavor)
    }
    fn check(&self, _emu: &Emulator) -> Result<(), String> {
        Err("deliberately poisoned job".to_string())
    }
}

#[test]
fn poisoned_job_in_parallel_sweep_leaves_other_jobs_bit_identical() {
    let suite = small_suite();
    let bad = PoisonedBench(uve::kernels::saxpy::Saxpy::new(100));
    let cpu = CpuConfig::default();

    // Clean serial baseline over the full suite.
    let clean_jobs: Vec<Job> = suite
        .iter()
        .map(|b| Job::new(b.as_ref(), Flavor::Uve, cpu.clone()))
        .collect();
    let serial = Runner::serial().verbose(false);
    let baseline = serial.run(&clean_jobs);
    assert_eq!(serial.finish(), 0, "clean sweep must exit zero");

    // Same sweep with a poisoned job spliced into the middle, 8 workers.
    let mid = suite.len() / 2;
    let mut jobs: Vec<Job> = Vec::new();
    for (i, b) in suite.iter().enumerate() {
        if i == mid {
            jobs.push(Job::new(&bad, Flavor::Uve, cpu.clone()));
        }
        jobs.push(Job::new(b.as_ref(), Flavor::Uve, cpu.clone()));
    }
    let runner = Runner::parallel(8).verbose(false);
    let out = runner.run(&jobs);
    assert_eq!(out.len(), suite.len() + 1);

    // Every healthy job is bit-identical to the clean serial sweep.
    let healthy: Vec<_> = out
        .iter()
        .filter(|m| !m.name.contains("[FAILED]"))
        .collect();
    assert_eq!(healthy.len(), baseline.len());
    for (got, want) in healthy.iter().zip(&baseline) {
        assert_eq!(got.name, want.name);
        assert_eq!(got.committed, want.committed, "{}", want.name);
        assert_eq!(got.stats, want.stats, "{}", want.name);
    }

    // The poisoned job produced a repro line and a nonzero exit code.
    let failures = runner.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].index, mid);
    let repro = failures[0].repro();
    assert!(repro.contains("kernel=poisoned"), "{repro}");
    assert!(repro.contains("flavor="), "{repro}");
    assert!(repro.contains("vlen="), "{repro}");
    assert!(repro.contains("deliberately poisoned job"), "{repro}");
    assert_eq!(runner.finish(), 1);
}

#[test]
fn recovered_faults_are_bit_identical_on_the_dsp_and_sparse_families() {
    // PR 10 follow-on families: the sparse kernels are gather-heavy (SpMV
    // runs two dual-indirect-modifier streams in lockstep, Histogram pairs
    // a gather with an indirect scatter store), so a rate-1 plan lands
    // precise traps inside indirect-modifier regions; the DSP kernels cover
    // the long 1-D and strided shapes. Recovery must leave no trace.
    use uve::kernels::{dsp, sparse};
    let benches: Vec<Box<dyn Benchmark>> = vec![
        Box::new(dsp::Fir::new(45, 9)),
        Box::new(dsp::ChanEst::new(90)),
        Box::new(dsp::FftStage::new(64, 3)),
        Box::new(sparse::Spmv::new(13, 33, 20)),
        Box::new(sparse::GatherReduce::new(90, 40)),
        Box::new(sparse::Histogram::new(93, 16)),
    ];
    for bench in benches {
        let (clean_mem, clean_arch, clean_committed, _, _) = run_uve(bench.as_ref(), None);
        let plan = StreamFaultPlan::new(0x5eed, 1);
        let (mem, arch, committed, faults, trace) = run_uve(bench.as_ref(), Some(plan));
        assert_eq!(
            mem,
            clean_mem,
            "{}: final memory diverged after {faults} recovered fault(s)",
            bench.name()
        );
        assert_eq!(
            arch,
            clean_arch,
            "{}: architectural state diverged after {faults} recovered fault(s)",
            bench.name()
        );
        assert_eq!(committed, clean_committed, "{}", bench.name());
        assert!(faults > 0, "{}: rate-1 plan must fault", bench.name());

        // The faulted trace stays conserved in the timing model, with
        // hostile memory-hierarchy injection layered on top.
        let mut cpu = CpuConfig::default();
        cpu.mem.fault = Some(FaultConfig::hostile(0x5eed));
        let stats = OoOCore::new(cpu).run(&trace);
        stats
            .account
            .check(stats.cycles)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
    }
}
