//! Invariants of the timing model: resource monotonicity and the paper's
//! qualitative claims at small scale.

use uve::core::engine::EngineConfig;
use uve::cpu::{CpuConfig, OoOCore};
use uve::kernels::{run_checked, Flavor};

fn trace_of(bench: &dyn uve::kernels::Benchmark, flavor: Flavor) -> uve::core::Trace {
    run_checked(bench, flavor).unwrap().result.trace
}

#[test]
fn deeper_fifos_never_slow_streams_down() {
    let bench = uve::kernels::saxpy::Saxpy::new(2048);
    let trace = trace_of(&bench, Flavor::Uve);
    let mut prev = u64::MAX;
    for depth in [2usize, 4, 8, 16] {
        let cpu = CpuConfig {
            engine: EngineConfig {
                fifo_depth: depth,
                ..EngineConfig::default()
            },
            ..CpuConfig::default()
        };
        let cycles = OoOCore::new(cpu).run(&trace).cycles;
        assert!(
            cycles <= prev.saturating_add(prev / 20),
            "depth {depth}: {cycles} vs {prev}"
        );
        prev = cycles;
    }
}

#[test]
fn more_vector_registers_never_slow_sve_down() {
    let bench = uve::kernels::gemm::Gemm::new(8, 32, 8);
    let trace = trace_of(&bench, Flavor::Sve);
    let mut prev = u64::MAX;
    for pvr in [40usize, 48, 64, 96] {
        let cpu = CpuConfig {
            vec_prf: pvr,
            ..CpuConfig::default()
        };
        let cycles = OoOCore::new(cpu).run(&trace).cycles;
        assert!(
            cycles <= prev.saturating_add(prev / 20),
            "pvr {pvr}: {cycles} vs {prev}"
        );
        prev = cycles;
    }
}

#[test]
fn uve_timing_insensitive_to_vector_registers() {
    let bench = uve::kernels::saxpy::Saxpy::new(2048);
    let trace = trace_of(&bench, Flavor::Uve);
    let at = |pvr: usize| {
        let cpu = CpuConfig {
            vec_prf: pvr,
            ..CpuConfig::default()
        };
        OoOCore::new(cpu).run(&trace).cycles
    };
    let low = at(48);
    let high = at(96);
    let drift = (low as f64 - high as f64).abs() / low as f64;
    assert!(
        drift < 0.02,
        "UVE should be PVR-insensitive: {low} vs {high}"
    );
}

#[test]
fn warm_runs_never_slower_than_cold() {
    let core = OoOCore::new(CpuConfig::default());
    for flavor in [Flavor::Uve, Flavor::Sve] {
        let bench = uve::kernels::knn::Knn::new(64, 16);
        let trace = trace_of(&bench, flavor);
        let cold = core.run(&trace).cycles;
        let warm = core.run_warm(&trace).cycles;
        assert!(warm <= cold, "{flavor}: warm {warm} > cold {cold}");
    }
}

#[test]
fn committed_counts_are_deterministic() {
    let bench = uve::kernels::mvt::Mvt::new(16);
    let a = run_checked(&bench, Flavor::Uve).unwrap().result.committed;
    let b = run_checked(&bench, Flavor::Uve).unwrap().result.committed;
    assert_eq!(a, b);
    let core = OoOCore::new(CpuConfig::default());
    let t = trace_of(&bench, Flavor::Uve);
    assert_eq!(core.run(&t).cycles, core.run(&t).cycles);
}

#[test]
fn engine_storage_scales_with_configuration() {
    let base = EngineConfig::default().storage_report().total_bytes();
    let wider = EngineConfig {
        fifo_depth: 16,
        ..EngineConfig::default()
    }
    .storage_report()
    .total_bytes();
    assert!(wider > base);
    let narrower = EngineConfig {
        max_streams: 8,
        ..EngineConfig::default()
    }
    .storage_report()
    .total_bytes();
    assert!(narrower < base);
}
