//! Randomized tests on the ISA layer: binary encode/decode and textual
//! assemble/disassemble round trips over every kernel program plus random
//! instruction fields.
//!
//! Random cases are drawn from the `uve-conform` generator (the same one
//! the differential fuzzer uses), so the suite is fully offline and every
//! failure is reproducible from its `(seed, case)` pair.

use uve::isa::{assemble, decode, disassemble_program, encode};
use uve_conform::{isa_fuzz::IsaEngine, Engine, FuzzRng};

const SEED: u64 = 0x1541_0151;
const CASES: u64 = 512;

fn all_kernel_programs() -> Vec<uve::isa::Program> {
    use uve::kernels::*;
    let suite: Vec<Box<dyn Benchmark>> = vec![
        Box::new(memcpy::Memcpy::new(64)),
        Box::new(stream::Stream::new(64)),
        Box::new(saxpy::Saxpy::new(64)),
        Box::new(gemm::Gemm::new(4, 16, 4)),
        Box::new(mvt::Mvt::new(8)),
        Box::new(gemver::Gemver::new(8)),
        Box::new(trisolv::Trisolv::new(8)),
        Box::new(jacobi::Jacobi2d::new(6, 1)),
        Box::new(haccmk::Haccmk::new(8)),
        Box::new(knn::Knn::new(8, 4)),
        Box::new(mamr::Mamr::indirect(8)),
        Box::new(floyd::FloydWarshall::new(6)),
    ];
    let mut out = Vec::new();
    for b in suite {
        for f in Flavor::all() {
            out.push(b.program(f));
        }
    }
    out
}

#[test]
fn every_kernel_program_encodes_and_decodes() {
    for p in all_kernel_programs() {
        for (pc, inst) in p.insts().iter().enumerate() {
            let w = encode(inst, pc as u32)
                .unwrap_or_else(|e| panic!("{}@{pc}: {e} ({inst})", p.name()));
            let back = decode(w, pc as u32).unwrap();
            assert_eq!(*inst, back, "{}@{pc}", p.name());
        }
    }
}

#[test]
fn every_kernel_program_disassembles_and_reassembles() {
    for p in all_kernel_programs() {
        let text = disassemble_program(&p);
        let back = assemble(p.name(), &text).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        assert_eq!(p.insts(), back.insts(), "{}", p.name());
    }
}

#[test]
fn random_instructions_roundtrip_binary() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "isa-binary", case);
        let c = IsaEngine::generate(&mut rng);
        let w = encode(&c.inst, c.pc).unwrap_or_else(|e| panic!("case {case}: {e} ({})", c.inst));
        assert_eq!(decode(w, c.pc).unwrap(), c.inst, "case {case}");
    }
}

#[test]
fn random_instructions_roundtrip_text() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "isa-text", case);
        let c = IsaEngine::generate(&mut rng);
        // Branch targets print as absolute indices; reassembling a single
        // instruction at index 0 only works for self-contained ones, so
        // wrap in a program context.
        let text = format!("{}\n", c.inst);
        let p = assemble("t", &text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        assert_eq!(p.insts()[0], c.inst, "case {case}");
    }
}

#[test]
fn full_conformance_engine_is_clean() {
    for case in 0..CASES {
        if let Err(e) = uve_conform::replay_one("isa", SEED, case) {
            panic!("isa {SEED} {case}: {e}");
        }
    }
}
