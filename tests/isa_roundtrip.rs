//! Property tests on the ISA layer: binary encode/decode and textual
//! assemble/disassemble round trips over every kernel program plus random
//! instruction fields.

// Compiled only with `--features proptest` (requires the registry-hosted
// `proptest` dev-dependency; see the workspace Cargo.toml note).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use uve::isa::{
    assemble, decode, disassemble_program, encode, AluOp, BrCond, DupSrc, FReg, Inst, PReg, VOp,
    VReg, VType, XReg,
};
use uve::stream::ElemWidth;

fn all_kernel_programs() -> Vec<uve::isa::Program> {
    use uve::kernels::*;
    let suite: Vec<Box<dyn Benchmark>> = vec![
        Box::new(memcpy::Memcpy::new(64)),
        Box::new(stream::Stream::new(64)),
        Box::new(saxpy::Saxpy::new(64)),
        Box::new(gemm::Gemm::new(4, 16, 4)),
        Box::new(mvt::Mvt::new(8)),
        Box::new(gemver::Gemver::new(8)),
        Box::new(trisolv::Trisolv::new(8)),
        Box::new(jacobi::Jacobi2d::new(6, 1)),
        Box::new(haccmk::Haccmk::new(8)),
        Box::new(knn::Knn::new(8, 4)),
        Box::new(mamr::Mamr::indirect(8)),
        Box::new(floyd::FloydWarshall::new(6)),
    ];
    let mut out = Vec::new();
    for b in suite {
        for f in Flavor::all() {
            out.push(b.program(f));
        }
    }
    out
}

#[test]
fn every_kernel_program_encodes_and_decodes() {
    for p in all_kernel_programs() {
        for (pc, inst) in p.insts().iter().enumerate() {
            let w = encode(inst, pc as u32)
                .unwrap_or_else(|e| panic!("{}@{pc}: {e} ({inst})", p.name()));
            let back = decode(w, pc as u32).unwrap();
            assert_eq!(*inst, back, "{}@{pc}", p.name());
        }
    }
}

#[test]
fn every_kernel_program_disassembles_and_reassembles() {
    for p in all_kernel_programs() {
        let text = disassemble_program(&p);
        let back = assemble(p.name(), &text).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        assert_eq!(p.insts(), back.insts(), "{}", p.name());
    }
}

fn arb_width() -> impl Strategy<Value = ElemWidth> {
    prop_oneof![
        Just(ElemWidth::Byte),
        Just(ElemWidth::Half),
        Just(ElemWidth::Word),
        Just(ElemWidth::Double),
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    let x = (0u8..32).prop_map(XReg::new);
    let f = (0u8..32).prop_map(FReg::new);
    let v = (0u8..32).prop_map(VReg::new);
    let p = (0u8..8).prop_map(PReg::new);
    prop_oneof![
        (0usize..16, x.clone(), x.clone(), x.clone()).prop_map(|(op, rd, rs1, rs2)| {
            let ops = [
                AluOp::Add,
                AluOp::Sub,
                AluOp::Mul,
                AluOp::Mulh,
                AluOp::Div,
                AluOp::Rem,
                AluOp::And,
                AluOp::Or,
                AluOp::Xor,
                AluOp::Sll,
                AluOp::Srl,
                AluOp::Sra,
                AluOp::Slt,
                AluOp::Sltu,
                AluOp::Min,
                AluOp::Max,
            ];
            Inst::Alu {
                op: ops[op],
                rd,
                rs1,
                rs2,
            }
        }),
        (x.clone(), x.clone(), -2048i32..2048).prop_map(|(rd, rs1, imm)| Inst::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm
        }),
        (x.clone(), x.clone(), -2048i32..2048, arb_width()).prop_map(|(rd, base, off, width)| {
            Inst::Ld {
                rd,
                base,
                off,
                width,
            }
        }),
        (0usize..6, x.clone(), x.clone(), 0u32..4000).prop_map(|(c, rs1, rs2, target)| {
            let conds = [
                BrCond::Eq,
                BrCond::Ne,
                BrCond::Lt,
                BrCond::Ge,
                BrCond::Ltu,
                BrCond::Geu,
            ];
            Inst::Branch {
                cond: conds[c],
                rs1,
                rs2,
                target,
            }
        }),
        (
            0usize..11,
            v.clone(),
            v.clone(),
            v.clone(),
            p.clone(),
            arb_width(),
            any::<bool>()
        )
            .prop_map(|(op, vd, vs1, vs2, pred, width, fp)| {
                let ops = [
                    VOp::Add,
                    VOp::Sub,
                    VOp::Mul,
                    VOp::Div,
                    VOp::Min,
                    VOp::Max,
                    VOp::And,
                    VOp::Or,
                    VOp::Xor,
                    VOp::Shl,
                    VOp::Shr,
                ];
                Inst::VArith {
                    op: ops[op],
                    ty: if fp { VType::Fp } else { VType::Int },
                    width,
                    vd,
                    vs1,
                    vs2,
                    pred,
                }
            }),
        (v.clone(), f.clone(), arb_width()).prop_map(|(vd, fr, width)| Inst::VDup {
            vd,
            src: DupSrc::F(fr),
            width,
            ty: VType::Fp
        }),
        (v.clone(), x.clone(), x.clone(), arb_width(), p).prop_map(
            |(vd, base, index, width, pred)| Inst::VLoad {
                vd,
                base,
                index,
                width,
                pred
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_instructions_roundtrip_binary(inst in arb_inst(), pc in 0u32..2048) {
        let w = encode(&inst, pc).unwrap();
        prop_assert_eq!(decode(w, pc).unwrap(), inst);
    }

    #[test]
    fn random_instructions_roundtrip_text(inst in arb_inst()) {
        // Branch targets print as absolute indices; reassembling a single
        // instruction at index 0 only works for self-contained ones, so
        // wrap in a program context.
        let text = format!("{inst}\n");
        let p = assemble("t", &text).unwrap();
        prop_assert_eq!(p.insts()[0], inst);
    }
}
