//! End-to-end tests of the distributed sweep service (`uve-sweep`).
//!
//! Everything here runs in-process — a real [`Coordinator`] on a loopback
//! ephemeral port, real worker threads speaking the real wire protocol —
//! and everything is held to the service's headline invariant: the merged
//! output of any sweep is **bit-identical** to a serial in-process run of
//! the same grid, regardless of worker count, request interleaving,
//! content-cache hits, or workers dying mid-sweep.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use uve_core::ExecMode;
use uve_kernels::Flavor;
use uve_sweep::{
    render_rows, request_sweep, request_sweep_resilient, run_serial, Coordinator,
    CoordinatorOptions, ReconnectPolicy, SweepOutcome, SweepSpec, WorkerOptions,
};

/// Spawns `n` healthy in-process workers against `addr`.
fn spawn_workers(addr: &str, n: usize) -> Vec<thread::JoinHandle<()>> {
    (0..n)
        .map(|i| {
            let addr = addr.to_string();
            let opts = WorkerOptions {
                name: format!("w{i}"),
                ..WorkerOptions::default()
            };
            thread::spawn(move || {
                uve_sweep::run_worker(&addr, &opts).expect("worker exits cleanly");
            })
        })
        .collect()
}

fn small_grid(kernels: &[&str]) -> SweepSpec {
    SweepSpec {
        small: true,
        kernels: kernels.iter().map(|k| (*k).to_string()).collect(),
        flavors: vec![Flavor::Uve, Flavor::Scalar],
        ..SweepSpec::default()
    }
}

fn sweep(addr: &str, spec: &SweepSpec) -> SweepOutcome {
    request_sweep(addr, spec, |_, _, _| {}).expect("sweep completes")
}

/// Polls `cond` until it holds, failing the test after 60 s.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(std::time::Instant::now() < deadline, "timed out: {what}");
        thread::sleep(Duration::from_millis(5));
    }
}

/// Per-sweep accounting must partition the grid: every point is either
/// cache-filled, joined onto an in-flight job, or newly executed.
fn assert_partition(o: &SweepOutcome) {
    assert_eq!(
        o.stats.cached + o.stats.joined + o.stats.executed,
        o.stats.total,
        "cached/joined/executed must partition the grid: {:?}",
        o.stats
    );
}

#[test]
fn overlapping_concurrent_sweeps_match_serial_and_repeat_is_free() {
    let coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorOptions::default()).unwrap();
    let addr = coordinator.local_addr().to_string();
    let workers = spawn_workers(&addr, 3);

    // Two overlapping grids (both contain SAXPY and Memcpy in both
    // flavors) raced from two client threads.
    let spec_a = small_grid(&["saxpy", "memcpy", "gemm"]);
    let spec_b = small_grid(&["memcpy", "saxpy", "mvt"]);
    let (out_a, out_b) = thread::scope(|s| {
        let a = s.spawn(|| sweep(&addr, &spec_a));
        let b = s.spawn(|| sweep(&addr, &spec_b));
        (a.join().unwrap(), b.join().unwrap())
    });

    let (serial_a, _) = run_serial(&spec_a).unwrap();
    let (serial_b, _) = run_serial(&spec_b).unwrap();
    assert_eq!(out_a.rows, serial_a, "sweep A bit-identical to serial");
    assert_eq!(out_b.rows, serial_b, "sweep B bit-identical to serial");
    assert_partition(&out_a);
    assert_partition(&out_b);

    // The overlap must not have been emulated twice: the union of both
    // grids is 4 distinct kernels x 2 flavors = 8 jobs, and the
    // service-wide fresh-emulation counter says exactly that — the 4
    // shared points were cached or joined, never re-run.
    let after_first = coordinator.emulations();
    assert_eq!(after_first, 8, "shared points emulated exactly once");

    // A repeated identical sweep is served entirely from the result
    // cache: all points cached, nothing executed, zero new emulations.
    let out_a2 = sweep(&addr, &spec_a);
    assert_eq!(out_a2.rows, serial_a, "warm replay bit-identical");
    assert_eq!(out_a2.stats.cached, out_a2.stats.total, "fully cached");
    assert_eq!(out_a2.stats.executed, 0);
    assert_eq!(
        out_a2.stats.emulations, after_first,
        "second identical sweep re-emulates nothing"
    );
    assert_eq!(coordinator.emulations(), after_first);

    coordinator.shutdown();
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn worker_death_and_poisoned_job_recover_bit_identically() {
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        CoordinatorOptions {
            max_attempts: 5,
            ..CoordinatorOptions::default()
        },
    )
    .unwrap();
    let addr = coordinator.local_addr().to_string();

    // Worker "dier" drops its connection on its second job without
    // replying (a kill mid-sweep); worker "poisoned" panics on every
    // SAXPY job. They are the only fleet when the sweep starts, which
    // guarantees the dier actually receives jobs; "healthy" joins after
    // the kill is observed and picks up all the pieces.
    let hostile_worker = |opts: WorkerOptions| {
        let addr = addr.to_string();
        // Hostile workers may exit with an error (their connection dies
        // by design); that must never affect the sweep.
        thread::spawn(move || {
            let _ = uve_sweep::run_worker(&addr, &opts);
        })
    };
    let mut workers = vec![
        hostile_worker(WorkerOptions {
            name: "dier".to_string(),
            die_after: Some(2),
            ..WorkerOptions::default()
        }),
        hostile_worker(WorkerOptions {
            name: "poisoned".to_string(),
            panic_on: Some("saxpy".to_string()),
            ..WorkerOptions::default()
        }),
    ];
    wait_until("hostile fleet connects", || {
        coordinator.workers_connected() >= 2
    });

    let spec = small_grid(&["saxpy", "memcpy", "gemm", "mvt"]);
    let out = thread::scope(|s| {
        let sweeper = s.spawn(|| sweep(&addr, &spec));
        // 8 jobs over a 2-worker fleet: the dier's serving loop must hand
        // it a second job, which it drops the connection on.
        wait_until("worker death detected", || coordinator.worker_deaths() >= 1);
        workers.push(hostile_worker(WorkerOptions {
            name: "healthy".to_string(),
            ..WorkerOptions::default()
        }));
        sweeper.join().unwrap()
    });
    let (serial, _) = run_serial(&spec).unwrap();
    assert_eq!(
        out.rows, serial,
        "sweep over dying and panicking workers is bit-identical to serial"
    );
    assert_partition(&out);

    // The dier really died: the coordinator saw it and requeued; the
    // poisoned worker's panics were reported as job errors and retried.
    assert!(
        out.stats.worker_deaths >= 1,
        "worker death must be detected: {:?}",
        out.stats
    );
    assert!(
        out.stats.retries >= 1,
        "lost/poisoned jobs must be requeued: {:?}",
        out.stats
    );
    assert_eq!(coordinator.worker_deaths(), out.stats.worker_deaths);

    coordinator.shutdown();
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn exec_modes_produce_identical_timing_rows() {
    let coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorOptions::default()).unwrap();
    let addr = coordinator.local_addr().to_string();
    let workers = spawn_workers(&addr, 2);

    let base = small_grid(&["saxpy", "memcpy"]);
    let interp = SweepSpec {
        execs: vec![ExecMode::Interpret],
        ..base.clone()
    };
    let translated = SweepSpec {
        execs: vec![ExecMode::Translated],
        ..base
    };
    let out_i = sweep(&addr, &interp);
    let out_t = sweep(&addr, &translated);

    // The exec axis is part of the job key (the grids are disjoint in
    // cache terms), but the PR-7 contract makes the *results* identical:
    // same trace, same replay, same digest — only the point's exec label
    // differs.
    assert_eq!(out_i.rows.len(), out_t.rows.len());
    for (a, b) in out_i.rows.iter().zip(&out_t.rows) {
        assert_eq!(a.point.kernel, b.point.kernel);
        assert_eq!(a.point.exec, ExecMode::Interpret);
        assert_eq!(b.point.exec, ExecMode::Translated);
        assert_eq!(
            (
                a.cycles,
                a.committed,
                a.rename_blocked,
                a.bus_util_bits,
                a.digest
            ),
            (
                b.cycles,
                b.committed,
                b.rename_blocked,
                b.bus_util_bits,
                b.digest
            ),
            "translated execution changes nothing but the label: {}",
            a.point.kernel
        );
    }
    // Both directions also hold against the serial baseline.
    let (serial_t, _) = run_serial(&translated).unwrap();
    assert_eq!(out_t.rows, serial_t);

    coordinator.shutdown();
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn multicore_and_faulted_points_sweep_bit_identically() {
    let coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorOptions::default()).unwrap();
    let addr = coordinator.local_addr().to_string();
    let workers = spawn_workers(&addr, 3);

    // Exercise the cores and fault-seed axes through the service.
    let spec = SweepSpec {
        small: true,
        kernels: vec!["memcpy".to_string(), "saxpy".to_string()],
        cores: vec![1, 2],
        fault_seeds: vec![0, 7],
        ..SweepSpec::default()
    };
    let out = sweep(&addr, &spec);
    let (serial, _) = run_serial(&spec).unwrap();
    assert_eq!(out.rows, serial, "cores x fault-seed grid matches serial");
    assert_eq!(out.rows.len(), 8);
    // Every (kernel, cores, fault_seed) cell is present exactly once in
    // canonical order — faulted and multicore points are first-class grid
    // axes, not separate code paths.
    for clean in out.rows.iter().filter(|r| r.point.fault_seed == 0) {
        assert_eq!(
            out.rows
                .iter()
                .filter(|r| {
                    r.point.fault_seed == 7
                        && r.point.kernel == clean.point.kernel
                        && r.point.cores == clean.point.cores
                })
                .count(),
            1,
            "matching faulted row for {} x{}",
            clean.point.kernel,
            clean.point.cores
        );
    }

    coordinator.shutdown();
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn sweep_of_unknown_kernel_is_a_clean_error() {
    let coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorOptions::default()).unwrap();
    let addr = coordinator.local_addr().to_string();
    let err = request_sweep(
        &addr,
        &SweepSpec {
            kernels: vec!["definitely-not-a-kernel".to_string()],
            ..SweepSpec::default()
        },
        |_, _, _| {},
    )
    .unwrap_err();
    assert!(err.contains("unknown kernel"), "{err}");
    coordinator.shutdown();
}

#[test]
fn client_reconnects_across_a_coordinator_restart() {
    // A durable cache directory shared by both coordinator incarnations.
    let dir = std::env::temp_dir().join(format!("uve-sweep-reconnect-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = || CoordinatorOptions {
        cache_dir: Some(dir.clone()),
        ..CoordinatorOptions::default()
    };

    let coordinator_a = Coordinator::bind("127.0.0.1:0", opts()).unwrap();
    let addr = Arc::new(Mutex::new(coordinator_a.local_addr().to_string()));
    let workers_a = spawn_workers(&addr.lock().unwrap(), 2);

    let spec = small_grid(&["saxpy", "memcpy", "gemm", "mvt"]);
    let frames = Arc::new(AtomicU32::new(0));
    let outcome = thread::scope(|s| {
        let sweeper = {
            let addr = Arc::clone(&addr);
            let frames = Arc::clone(&frames);
            let spec = spec.clone();
            s.spawn(move || {
                request_sweep_resilient(
                    || addr.lock().unwrap().clone(),
                    &spec,
                    &ReconnectPolicy {
                        base_delay: Duration::from_millis(20),
                        max_delay: Duration::from_millis(200),
                        max_attempts: 20,
                        ..ReconnectPolicy::default()
                    },
                    |done, _, _| {
                        frames.fetch_max(done, Ordering::SeqCst);
                    },
                )
                .expect("resilient sweep completes across the restart")
            })
        };

        // Drop the coordinator mid-sweep, after it has finished (and
        // durably cached) at least two jobs but before the grid is done.
        wait_until("two jobs complete", || frames.load(Ordering::SeqCst) >= 2);
        coordinator_a.shutdown();
        for w in workers_a {
            let _ = w.join();
        }

        // Restart from the same cache directory on a fresh port. The
        // client is backing off; once the address points at the new
        // incarnation, its resubmission finds the finished rows on disk.
        let coordinator_b = Coordinator::bind("127.0.0.1:0", opts()).unwrap();
        assert!(
            coordinator_b.recovery().is_some_and(|r| r.rows() >= 2),
            "restarted coordinator recovered the finished rows: {:?}",
            coordinator_b.recovery()
        );
        let addr_b = coordinator_b.local_addr().to_string();
        let workers_b = spawn_workers(&addr_b, 2);
        *addr.lock().unwrap() = addr_b;

        let outcome = sweeper.join().unwrap();
        coordinator_b.shutdown();
        for w in workers_b {
            let _ = w.join();
        }
        outcome
    });

    // The resumed sweep is byte-identical to an uninterrupted run, and
    // the rows finished before the kill were served from the durable
    // cache, not re-executed.
    let (serial, _) = run_serial(&spec).unwrap();
    assert_eq!(
        render_rows(&outcome.rows),
        render_rows(&serial),
        "resumed sweep renders byte-identically to serial"
    );
    assert_partition(&outcome);
    assert!(
        outcome.stats.cached >= 2,
        "pre-restart rows must come from the durable cache: {:?}",
        outcome.stats
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn progress_is_streamed_and_monotonic() {
    let coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorOptions::default()).unwrap();
    let addr = coordinator.local_addr().to_string();
    let workers = spawn_workers(&addr, 2);

    let spec = small_grid(&["saxpy", "memcpy"]);
    let mut frames = Vec::new();
    let out = request_sweep(&addr, &spec, |done, total, _| frames.push((done, total)))
        .expect("sweep completes");
    assert!(!frames.is_empty(), "at least one progress frame");
    assert!(
        frames.windows(2).all(|w| w[0].0 <= w[1].0),
        "progress is monotonic: {frames:?}"
    );
    assert_eq!(frames.last().unwrap().1 as usize, out.rows.len());

    coordinator.shutdown();
    for w in workers {
        w.join().unwrap();
    }
    // Give detached coordinator connection threads a beat to drain before
    // the next test binds a fresh port (not required for correctness).
    thread::sleep(Duration::from_millis(10));
}

#[test]
fn dsp_and_sparse_kernels_sweep_bit_identically() {
    // PR 10: the follow-on families are first-class catalog entries — a
    // grid mixing a DSP kernel with sparse gather kernels must merge
    // bit-identically to serial, resolve case-insensitively, and come
    // back under the catalog's canonical spelling.
    let coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorOptions::default()).unwrap();
    let addr = coordinator.local_addr().to_string();
    let workers = spawn_workers(&addr, 2);

    let spec = small_grid(&["fir", "fft-stage", "spmv", "histogram"]);
    let out = sweep(&addr, &spec);
    let (serial, _) = run_serial(&spec).unwrap();
    assert_eq!(out.rows, serial, "dsp/sparse grid matches serial");
    assert_partition(&out);
    for name in ["FIR", "FFT-Stage", "SpMV", "Histogram"] {
        assert!(
            out.rows.iter().any(|r| r.point.kernel == name),
            "canonical name {name} missing from rows"
        );
    }

    coordinator.shutdown();
    for w in workers {
        w.join().unwrap();
    }
}
