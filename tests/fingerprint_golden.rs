//! Golden program fingerprints: the build-stability contract.
//!
//! [`uve_core::program_fingerprint`] is FNV-1a over a canonical byte
//! encoding of the assembled program, so the same source kernel hashes to
//! the same `u64` on every build, rustc version, and machine. That is
//! what makes the sweep service's durable cache (PR 9) *durable*: a cache
//! written by yesterday's binary must hit under today's.
//!
//! These constants are pinned values of that contract. If one changes,
//! either (a) the kernel's generated code genuinely changed — update the
//! constant **knowing every persisted cache goes cold**, and say so in
//! the commit — or (b) the fingerprint or ISA encoder changed behavior,
//! which is exactly the regression this test exists to catch.

use uve_core::program_fingerprint;
use uve_kernels::Flavor;
use uve_sweep::{job_key, resolve, SweepSpec};

fn fp(kernel: &str, flavor: Flavor) -> u64 {
    let bench = resolve(kernel, true).expect("catalog kernel");
    program_fingerprint(&bench.program(flavor))
}

#[test]
fn program_fingerprints_are_pinned() {
    let golden: &[(&str, Flavor, u64)] = &[
        ("saxpy", Flavor::Uve, 0xd17e97efd0723f34),
        ("saxpy", Flavor::Scalar, 0x83f4523a9a0fc4b4),
        ("memcpy", Flavor::Uve, 0x5a890e89e663f55b),
        ("stream", Flavor::Sve, 0x2e2b56a77498f5e6),
        ("mamr-ind", Flavor::Uve, 0x06db9f22b3b52d8e),
        ("covariance", Flavor::Neon, 0xff0b2f9c95167a2f),
    ];
    for &(kernel, flavor, want) in golden {
        let got = fp(kernel, flavor);
        assert_eq!(
            got, want,
            "{kernel}/{flavor:?}: fingerprint {got:#018x} != pinned {want:#018x} \
             (a drift here silently invalidates every durable sweep cache)"
        );
    }
}

#[test]
fn job_keys_are_pinned() {
    // job_key folds the program fingerprint with the full point identity,
    // so pinning a couple of keys pins the whole cache-addressing chain.
    let spec = SweepSpec::small_default();
    let points = spec.points().expect("plan small grid");
    let golden: &[(usize, u64)] = &[(0, 0xd23f86964f65f1ae), (1, 0xb1639073ad972e4d)];
    for &(i, want) in golden {
        let got = job_key(&points[i]).expect("job key");
        assert_eq!(got, want, "job_key(points[{i}] = {:?}) drifted", points[i]);
    }
}

#[test]
fn fingerprint_distinguishes_flavors_and_kernels() {
    assert_ne!(fp("saxpy", Flavor::Uve), fp("saxpy", Flavor::Scalar));
    assert_ne!(fp("saxpy", Flavor::Uve), fp("memcpy", Flavor::Uve));
}
